// Package tcpfab implements fabric.Provider over real TCP sockets, so the
// same HCL programs that run on the simulated fabric can run across OS
// processes — the portability the paper gets from OFI's pluggable wire
// protocols. One process hosts one node; verbs travel as length-prefixed
// frames; one-sided operations are applied to the owner's registered
// segments by its frame loop (standing in for the remote NIC).
//
// SPMD requirement: all processes must construct containers (and register
// segments) in the same deterministic order so ids agree, exactly like
// symmetric allocation in SHMEM/PGAS runtimes.
package tcpfab

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"hcl/internal/fabric"
	"hcl/internal/metrics"
)

// Frame types.
const (
	frameRPC   byte = 1
	frameWrite byte = 2
	frameRead  byte = 3
	frameCAS   byte = 4
	frameFAA   byte = 5
)

// Config describes one process's place in the TCP fabric.
type Config struct {
	// NodeID is this process's node (index into Addrs).
	NodeID int
	// Addrs lists every node's listen address, indexed by node id.
	Addrs []string
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration

	// OpDeadline bounds each verb end-to-end — dialing, every retry and
	// backoff pause, and the exchange itself. Zero selects the default
	// (30s); negative disables the bound. Per-op fabric.Options.Deadline
	// overrides it.
	OpDeadline time.Duration
	// MaxAttempts caps tries per verb, first attempt included (default
	// 3). Per-op fabric.Options.MaxAttempts overrides it.
	MaxAttempts int
	// Backoff schedules the pauses between retries (zero value selects
	// fabric.DefaultBackoff()).
	Backoff fabric.Backoff
	// Seed seeds retry jitter (default 1; jitter only shapes pauses, so
	// the value never affects correctness).
	Seed int64
	// Collector, when non-nil, receives Retries/Timeouts/Reconnects
	// counters (bucketed by the caller's virtual clock).
	Collector *metrics.Collector
}

// Fabric is the TCP provider. Create one per process with New.
type Fabric struct {
	cfg        Config
	ln         net.Listener
	dispatcher atomic.Pointer[fabric.Dispatcher]

	segMu sync.RWMutex
	segs  []fabric.Segment // local segments; remote ids are symmetric

	poolMu sync.Mutex
	pools  map[int][]*clientConn

	// accepted tracks live server-side connections so Close severs them
	// like real process death would — peers must observe a dead node,
	// not a half-alive one that still answers on old sockets.
	acceptMu sync.Mutex
	accepted map[net.Conn]struct{}

	rngMu sync.Mutex
	rng   *rand.Rand

	closed atomic.Bool
	wg     sync.WaitGroup
}

// New starts listening on Addrs[NodeID] and returns the provider.
func New(cfg Config) (*Fabric, error) {
	if cfg.NodeID < 0 || cfg.NodeID >= len(cfg.Addrs) {
		return nil, fmt.Errorf("tcpfab: node %d outside %d addrs", cfg.NodeID, len(cfg.Addrs))
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.OpDeadline == 0 {
		cfg.OpDeadline = 30 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	ln, err := net.Listen("tcp", cfg.Addrs[cfg.NodeID])
	if err != nil {
		return nil, fmt.Errorf("tcpfab: listen %s: %w", cfg.Addrs[cfg.NodeID], err)
	}
	f := &Fabric{
		cfg:      cfg,
		ln:       ln,
		pools:    make(map[int][]*clientConn),
		accepted: make(map[net.Conn]struct{}),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	f.wg.Add(1)
	go f.acceptLoop()
	return f, nil
}

// rand01 draws one jitter sample.
func (f *Fabric) rand01() float64 {
	f.rngMu.Lock()
	defer f.rngMu.Unlock()
	return f.rng.Float64()
}

// count records a robustness counter at the caller's virtual time.
func (f *Fabric) count(kind metrics.Kind, node int, clk *fabric.Clock) {
	if f.cfg.Collector != nil {
		f.cfg.Collector.Add(kind, node, clk.Now(), 1)
	}
}

// Addr reports the actual listen address (useful with ":0" configs).
func (f *Fabric) Addr() string { return f.ln.Addr().String() }

// SetAddrs replaces the node address book, supporting ephemeral-port
// bootstrap: start every node on ":0", gather the resolved Addr()s, then
// distribute the final list. Call before issuing any cross-node verbs.
func (f *Fabric) SetAddrs(addrs []string) {
	f.poolMu.Lock()
	defer f.poolMu.Unlock()
	f.cfg.Addrs = addrs
}

// Name implements fabric.Provider.
func (f *Fabric) Name() string { return "tcp" }

// NumNodes implements fabric.Provider.
func (f *Fabric) NumNodes() int { return len(f.cfg.Addrs) }

// Close implements fabric.Provider.
func (f *Fabric) Close() error {
	if !f.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := f.ln.Close()
	f.poolMu.Lock()
	for _, conns := range f.pools {
		for _, c := range conns {
			c.conn.Close()
		}
	}
	f.pools = make(map[int][]*clientConn)
	f.poolMu.Unlock()
	f.acceptMu.Lock()
	for conn := range f.accepted {
		conn.Close()
	}
	f.accepted = make(map[net.Conn]struct{})
	f.acceptMu.Unlock()
	return err
}

// SetDispatcher implements fabric.Provider. Only the local node's
// dispatcher is retained; remote nodes have their own processes.
func (f *Fabric) SetDispatcher(node int, d fabric.Dispatcher) {
	if node == f.cfg.NodeID {
		f.dispatcher.Store(&d)
	}
}

// RegisterSegment implements fabric.Provider. Registrations for remote
// nodes allocate the symmetric id without storing anything.
func (f *Fabric) RegisterSegment(node int, seg fabric.Segment) int {
	f.segMu.Lock()
	defer f.segMu.Unlock()
	id := len(f.segs)
	if node == f.cfg.NodeID {
		f.segs = append(f.segs, seg)
	} else {
		f.segs = append(f.segs, nil) // placeholder to keep ids symmetric
	}
	return id
}

func (f *Fabric) localSegment(id int) (fabric.Segment, error) {
	f.segMu.RLock()
	defer f.segMu.RUnlock()
	if id < 0 || id >= len(f.segs) || f.segs[id] == nil {
		return nil, fabric.ErrBadSegment
	}
	return f.segs[id], nil
}

// acceptLoop services incoming connections.
func (f *Fabric) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return // listener closed
		}
		f.acceptMu.Lock()
		f.accepted[conn] = struct{}{}
		f.acceptMu.Unlock()
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			defer func() {
				f.acceptMu.Lock()
				delete(f.accepted, conn)
				f.acceptMu.Unlock()
				conn.Close()
			}()
			f.serveConn(conn)
		}()
	}
}

// serveConn handles one peer connection until EOF.
func (f *Fabric) serveConn(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			return
		}
		resp, err := f.handleFrame(typ, payload)
		if err != nil {
			resp = append([]byte{0}, []byte(err.Error())...)
		} else {
			resp = append([]byte{1}, resp...)
		}
		if err := writeFrame(bw, typ, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func (f *Fabric) handleFrame(typ byte, payload []byte) ([]byte, error) {
	switch typ {
	case frameRPC:
		dp := f.dispatcher.Load()
		if dp == nil {
			return nil, errors.New("tcpfab: no dispatcher")
		}
		resp, _ := (*dp)(payload)
		return resp, nil
	case frameWrite:
		seg, off, rest, err := splitSegOff(payload)
		if err != nil {
			return nil, err
		}
		s, err := f.localSegment(seg)
		if err != nil {
			return nil, err
		}
		return nil, s.WriteAt(off, rest)
	case frameRead:
		seg, off, rest, err := splitSegOff(payload)
		if err != nil || len(rest) != 8 {
			return nil, errors.New("tcpfab: bad read frame")
		}
		n := int(binary.LittleEndian.Uint64(rest))
		s, err := f.localSegment(seg)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, n)
		if err := s.ReadAt(off, buf); err != nil {
			return nil, err
		}
		return buf, nil
	case frameCAS:
		seg, off, rest, err := splitSegOff(payload)
		if err != nil || len(rest) != 16 {
			return nil, errors.New("tcpfab: bad cas frame")
		}
		old := binary.LittleEndian.Uint64(rest)
		new := binary.LittleEndian.Uint64(rest[8:])
		s, err := f.localSegment(seg)
		if err != nil {
			return nil, err
		}
		witness, ok := s.CAS64(off, old, new)
		out := make([]byte, 9)
		binary.LittleEndian.PutUint64(out, witness)
		if ok {
			out[8] = 1
		}
		return out, nil
	case frameFAA:
		seg, off, rest, err := splitSegOff(payload)
		if err != nil || len(rest) != 8 {
			return nil, errors.New("tcpfab: bad faa frame")
		}
		s, err := f.localSegment(seg)
		if err != nil {
			return nil, err
		}
		delta := binary.LittleEndian.Uint64(rest)
		newV := s.Add64(off, delta)
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, newV-delta)
		return out, nil
	default:
		return nil, fmt.Errorf("tcpfab: unknown frame type %d", typ)
	}
}

// Connection pool ------------------------------------------------------

// clientConn keeps its bufio state for the connection's lifetime; a fresh
// reader per exchange could over-read and silently drop buffered frames.
type clientConn struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// getConn returns a pooled connection to node or dials a fresh one.
// pooled reports which: a pooled connection was established earlier, so
// its failure means an established link was lost (a reconnect), while a
// dial failure means the request never left this process. deadlineAt, when
// non-zero, clips the dial timeout to the operation's remaining budget.
func (f *Fabric) getConn(node int, deadlineAt time.Time) (c *clientConn, pooled bool, err error) {
	if f.closed.Load() {
		return nil, false, fabric.ErrClosed
	}
	f.poolMu.Lock()
	conns := f.pools[node]
	if len(conns) > 0 {
		c := conns[len(conns)-1]
		f.pools[node] = conns[:len(conns)-1]
		f.poolMu.Unlock()
		return c, true, nil
	}
	f.poolMu.Unlock()
	dt := f.cfg.DialTimeout
	if !deadlineAt.IsZero() {
		if rem := time.Until(deadlineAt); rem < dt {
			dt = rem
		}
	}
	if dt <= 0 {
		return nil, false, fmt.Errorf("tcpfab: dial %s: %w", f.cfg.Addrs[node], os.ErrDeadlineExceeded)
	}
	raw, err := net.DialTimeout("tcp", f.cfg.Addrs[node], dt)
	if err != nil {
		return nil, false, err
	}
	return &clientConn{
		conn: raw,
		br:   bufio.NewReaderSize(raw, 1<<16),
		bw:   bufio.NewWriterSize(raw, 1<<16),
	}, false, nil
}

func (f *Fabric) putConn(node int, c *clientConn) {
	f.poolMu.Lock()
	defer f.poolMu.Unlock()
	if f.closed.Load() || len(f.pools[node]) >= 8 {
		c.conn.Close()
		return
	}
	f.pools[node] = append(f.pools[node], c)
}

// remoteError is an application-level failure reported by the peer's frame
// loop (bad segment, no dispatcher, handler error). The transport worked,
// so these are never retried.
type remoteError struct{ msg string }

func (e *remoteError) Error() string { return "tcpfab: remote: " + e.msg }

// retryAllowed reports whether a failed attempt of typ may be re-sent.
// Reads and writes are idempotent — replaying them converges to the same
// state — so any transport failure is retryable. RPC, CAS, and FAA mutate
// non-idempotently; they are re-sent only when the request provably never
// left this process (the connection could not even be established), unless
// the caller opted in with Options.RetryRPC.
func retryAllowed(typ byte, delivered bool, o fabric.Options) bool {
	switch typ {
	case frameRead, frameWrite:
		return true
	default:
		return !delivered || o.RetryRPC
	}
}

// classify converts the last transport error of an exhausted exchange into
// the typed errors callers dispatch on: deadline expiry becomes
// fabric.ErrTimeout; refused, reset, or EOF-ed connections become
// fabric.ErrNodeDown. Anything else passes through unchanged.
func classify(node int, err error) error {
	var nerr net.Error
	switch {
	case errors.Is(err, os.ErrDeadlineExceeded),
		errors.As(err, &nerr) && nerr.Timeout():
		return fmt.Errorf("tcpfab: node %d: %w (%v)", node, fabric.ErrTimeout, err)
	case errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.EPIPE),
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF):
		return fmt.Errorf("tcpfab: node %d: %w (%v)", node, fabric.ErrNodeDown, err)
	}
	return err
}

// exchange sends one frame and waits for its response, retrying with
// capped exponential backoff and transparent reconnection per the policy
// in retryAllowed, all bounded by the operation deadline.
func (f *Fabric) exchange(clk *fabric.Clock, node int, typ byte, payload []byte, o fabric.Options) ([]byte, error) {
	start := time.Now()
	defer func() {
		// Keep virtual clocks monotone with observed wall time so
		// mixed-mode programs still produce sane makespans.
		clk.Advance(time.Since(start).Nanoseconds())
	}()

	deadline := f.cfg.OpDeadline
	if o.Deadline != 0 {
		deadline = o.Deadline
	}
	var deadlineAt time.Time
	if deadline > 0 {
		deadlineAt = start.Add(deadline)
	}
	attempts := f.cfg.MaxAttempts
	if o.MaxAttempts > 0 {
		attempts = o.MaxAttempts
	}

	var lastErr error
	timedOut := false
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			f.count(metrics.Retries, node, clk)
			pause := f.cfg.Backoff.Delay(attempt-1, f.rand01())
			if !deadlineAt.IsZero() {
				rem := time.Until(deadlineAt)
				if rem <= 0 {
					timedOut = true
					break
				}
				if pause > rem {
					pause = rem
				}
			}
			time.Sleep(pause)
		}
		if !deadlineAt.IsZero() && !time.Now().Before(deadlineAt) {
			timedOut = true
			break
		}
		resp, delivered, err := f.attempt(clk, node, typ, payload, deadlineAt)
		if err == nil {
			return resp, nil
		}
		var rerr *remoteError
		if errors.As(err, &rerr) {
			return nil, err
		}
		lastErr = err
		if f.closed.Load() || errors.Is(err, fabric.ErrClosed) {
			return nil, lastErr
		}
		if !retryAllowed(typ, delivered, o) {
			break
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("tcpfab: node %d: %w (after %s)", node, fabric.ErrTimeout, time.Since(start))
	} else {
		lastErr = classify(node, lastErr)
		if timedOut && !errors.Is(lastErr, fabric.ErrTimeout) && !errors.Is(lastErr, fabric.ErrNodeDown) {
			lastErr = fmt.Errorf("tcpfab: node %d: %w (last error: %v)", node, fabric.ErrTimeout, lastErr)
		}
	}
	if errors.Is(lastErr, fabric.ErrTimeout) {
		f.count(metrics.Timeouts, node, clk)
	}
	return nil, lastErr
}

// attempt performs one wire exchange. delivered reports whether the
// request may have reached the peer: false only when the connection could
// not even be established, which is what makes dial-stage failures safe to
// retry for non-idempotent verbs.
func (f *Fabric) attempt(clk *fabric.Clock, node int, typ byte, payload []byte, deadlineAt time.Time) (resp []byte, delivered bool, err error) {
	c, pooled, err := f.getConn(node, deadlineAt)
	if err != nil {
		return nil, false, err
	}
	fail := func(err error) ([]byte, bool, error) {
		c.conn.Close()
		if pooled {
			// An established link died under us; the next attempt will
			// transparently re-dial.
			f.count(metrics.Reconnects, node, clk)
		}
		return nil, true, err
	}
	if !deadlineAt.IsZero() {
		if err := c.conn.SetDeadline(deadlineAt); err != nil {
			return fail(err)
		}
	}
	if err := writeFrame(c.bw, typ, payload); err != nil {
		return fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return fail(err)
	}
	rtyp, raw, err := readFrame(c.br)
	if err != nil {
		return fail(err)
	}
	if rtyp != typ {
		return fail(fmt.Errorf("tcpfab: response type %d for request %d", rtyp, typ))
	}
	if !deadlineAt.IsZero() {
		if err := c.conn.SetDeadline(time.Time{}); err != nil {
			c.conn.Close()
			return nil, true, err
		}
	}
	f.putConn(node, c)
	if len(raw) < 1 {
		return nil, true, errors.New("tcpfab: empty response")
	}
	if raw[0] == 0 {
		return nil, true, &remoteError{msg: string(raw[1:])}
	}
	return raw[1:], true, nil
}

// RoundTrip implements fabric.Provider.
func (f *Fabric) RoundTrip(clk *fabric.Clock, from fabric.RankRef, node int, req []byte) ([]byte, error) {
	return f.roundTrip(clk, from, node, req, fabric.Options{})
}

func (f *Fabric) roundTrip(clk *fabric.Clock, from fabric.RankRef, node int, req []byte, o fabric.Options) ([]byte, error) {
	if node == f.cfg.NodeID {
		dp := f.dispatcher.Load()
		if dp == nil {
			return nil, errors.New("tcpfab: no dispatcher")
		}
		resp, _ := (*dp)(req)
		return resp, nil
	}
	return f.exchange(clk, node, frameRPC, req, o)
}

// Write implements fabric.Provider.
func (f *Fabric) Write(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, data []byte) error {
	return f.write(clk, from, node, seg, off, data, fabric.Options{})
}

func (f *Fabric) write(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, data []byte, o fabric.Options) error {
	if node == f.cfg.NodeID {
		s, err := f.localSegment(seg)
		if err != nil {
			return err
		}
		return s.WriteAt(off, data)
	}
	payload := appendSegOff(nil, seg, off)
	payload = append(payload, data...)
	_, err := f.exchange(clk, node, frameWrite, payload, o)
	return err
}

// Read implements fabric.Provider.
func (f *Fabric) Read(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, buf []byte) error {
	return f.read(clk, from, node, seg, off, buf, fabric.Options{})
}

func (f *Fabric) read(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, buf []byte, o fabric.Options) error {
	if node == f.cfg.NodeID {
		s, err := f.localSegment(seg)
		if err != nil {
			return err
		}
		return s.ReadAt(off, buf)
	}
	payload := appendSegOff(nil, seg, off)
	payload = binary.LittleEndian.AppendUint64(payload, uint64(len(buf)))
	resp, err := f.exchange(clk, node, frameRead, payload, o)
	if err != nil {
		return err
	}
	if len(resp) != len(buf) {
		return fmt.Errorf("tcpfab: read returned %d bytes, want %d", len(resp), len(buf))
	}
	copy(buf, resp)
	return nil
}

// CAS implements fabric.Provider.
func (f *Fabric) CAS(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, old, new uint64) (uint64, bool, error) {
	return f.cas(clk, from, node, seg, off, old, new, fabric.Options{})
}

func (f *Fabric) cas(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, old, new uint64, o fabric.Options) (uint64, bool, error) {
	if node == f.cfg.NodeID {
		s, err := f.localSegment(seg)
		if err != nil {
			return 0, false, err
		}
		witness, ok := s.CAS64(off, old, new)
		return witness, ok, nil
	}
	payload := appendSegOff(nil, seg, off)
	payload = binary.LittleEndian.AppendUint64(payload, old)
	payload = binary.LittleEndian.AppendUint64(payload, new)
	resp, err := f.exchange(clk, node, frameCAS, payload, o)
	if err != nil {
		return 0, false, err
	}
	if len(resp) != 9 {
		return 0, false, errors.New("tcpfab: bad cas response")
	}
	return binary.LittleEndian.Uint64(resp), resp[8] == 1, nil
}

// FetchAdd implements fabric.Provider.
func (f *Fabric) FetchAdd(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, delta uint64) (uint64, error) {
	return f.fetchAdd(clk, from, node, seg, off, delta, fabric.Options{})
}

func (f *Fabric) fetchAdd(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, delta uint64, o fabric.Options) (uint64, error) {
	if node == f.cfg.NodeID {
		s, err := f.localSegment(seg)
		if err != nil {
			return 0, err
		}
		return s.Add64(off, delta) - delta, nil
	}
	payload := appendSegOff(nil, seg, off)
	payload = binary.LittleEndian.AppendUint64(payload, delta)
	resp, err := f.exchange(clk, node, frameFAA, payload, o)
	if err != nil {
		return 0, err
	}
	if len(resp) != 8 {
		return 0, errors.New("tcpfab: bad faa response")
	}
	return binary.LittleEndian.Uint64(resp), nil
}

// WithOptions implements fabric.Optioned: the returned view shares this
// fabric's listener, segment table, and connection pool, but every verb it
// issues is bounded by o.Deadline (wall clock, enforced with socket
// deadlines) and retried per o.MaxAttempts / o.RetryRPC.
func (f *Fabric) WithOptions(o fabric.Options) fabric.Provider {
	if o == (fabric.Options{}) {
		return f
	}
	return &optioned{f: f, o: o}
}

// optioned is the per-op-options view of a Fabric.
type optioned struct {
	f *Fabric
	o fabric.Options
}

var _ fabric.Provider = (*optioned)(nil)
var _ fabric.Optioned = (*optioned)(nil)

func (v *optioned) Name() string                                { return v.f.Name() }
func (v *optioned) NumNodes() int                               { return v.f.NumNodes() }
func (v *optioned) Close() error                                { return v.f.Close() }
func (v *optioned) SetDispatcher(n int, d fabric.Dispatcher)    { v.f.SetDispatcher(n, d) }
func (v *optioned) RegisterSegment(n int, s fabric.Segment) int { return v.f.RegisterSegment(n, s) }

func (v *optioned) WithOptions(o fabric.Options) fabric.Provider {
	return v.f.WithOptions(v.o.Merge(o))
}

func (v *optioned) RoundTrip(clk *fabric.Clock, from fabric.RankRef, node int, req []byte) ([]byte, error) {
	return v.f.roundTrip(clk, from, node, req, v.o)
}

func (v *optioned) Write(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, data []byte) error {
	return v.f.write(clk, from, node, seg, off, data, v.o)
}

func (v *optioned) Read(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, buf []byte) error {
	return v.f.read(clk, from, node, seg, off, buf, v.o)
}

func (v *optioned) CAS(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, old, new uint64) (uint64, bool, error) {
	return v.f.cas(clk, from, node, seg, off, old, new, v.o)
}

func (v *optioned) FetchAdd(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, delta uint64) (uint64, error) {
	return v.f.fetchAdd(clk, from, node, seg, off, delta, v.o)
}

// Wire helpers ---------------------------------------------------------

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > 1<<30 {
		return 0, nil, fmt.Errorf("tcpfab: oversized frame %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

func appendSegOff(out []byte, seg, off int) []byte {
	out = binary.LittleEndian.AppendUint64(out, uint64(seg))
	return binary.LittleEndian.AppendUint64(out, uint64(off))
}

func splitSegOff(b []byte) (seg, off int, rest []byte, err error) {
	if len(b) < 16 {
		return 0, 0, nil, errors.New("tcpfab: short seg/off header")
	}
	return int(binary.LittleEndian.Uint64(b)), int(binary.LittleEndian.Uint64(b[8:])), b[16:], nil
}

var _ fabric.Provider = (*Fabric)(nil)
