package tcpfab

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hcl/internal/fabric"
	"hcl/internal/memory"
	"hcl/internal/metrics"
)

// newPairCfg starts two fabrics on loopback with per-side config tweaks
// applied before listening (Addrs and NodeID are filled in).
func newPairCfg(t *testing.T, tweak func(node int, cfg *Config)) (*Fabric, *Fabric) {
	t.Helper()
	mk := func(node int) *Fabric {
		cfg := Config{NodeID: node, Addrs: []string{"127.0.0.1:0", "127.0.0.1:0"}}
		if tweak != nil {
			tweak(node, &cfg)
		}
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a0 := mk(0)
	a1 := mk(1)
	addrs := []string{a0.Addr(), a1.Addr()}
	a0.SetAddrs(addrs)
	a1.SetAddrs(addrs)
	t.Cleanup(func() { a0.Close(); a1.Close() })
	return a0, a1
}

// TestMuxConcurrentMixedVerbs hammers one multiplexed connection with many
// goroutines issuing interleaved RPC, Write, Read, CAS, and FetchAdd verbs.
// Run under -race this is the data-path soundness check for the shared
// writer/reader goroutines, the pending table, and the pooled buffers.
func TestMuxConcurrentMixedVerbs(t *testing.T) {
	f0, f1 := newPairCfg(t, nil)
	f1.SetDispatcher(1, func(req []byte) ([]byte, int64) { return req, 0 })
	seg1 := memory.NewSegment(1 << 16)
	id := f0.RegisterSegment(1, nil)
	f1.RegisterSegment(1, seg1)

	const workers = 16
	const iters = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clk := fabric.NewClock(0)
			ref := fabric.RankRef{Rank: w, Node: 0}
			// Each worker owns a disjoint 64-byte region.
			base := w * 64
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0:
					msg := []byte(fmt.Sprintf("w%d-i%d", w, i))
					resp, err := f0.RoundTrip(clk, ref, 1, msg)
					if err != nil || string(resp) != string(msg) {
						t.Errorf("rpc w%d i%d: %q %v", w, i, resp, err)
						return
					}
				case 1:
					data := []byte(fmt.Sprintf("data-%d-%d", w, i))
					if err := f0.Write(clk, ref, 1, id, base, data); err != nil {
						t.Errorf("write w%d i%d: %v", w, i, err)
						return
					}
					buf := make([]byte, len(data))
					if err := f0.Read(clk, ref, 1, id, base, buf); err != nil || string(buf) != string(data) {
						t.Errorf("read w%d i%d: %q %v", w, i, buf, err)
						return
					}
				case 2:
					// Private word at base+32: CAS chains stay consistent.
					old := uint64(i / 4)
					if _, ok, err := f0.CAS(clk, ref, 1, id, base+32, old, old+1); err != nil || !ok {
						t.Errorf("cas w%d i%d: ok=%v err=%v", w, i, ok, err)
						return
					}
				case 3:
					if _, err := f0.FetchAdd(clk, ref, 1, id, base+40, 1); err != nil {
						t.Errorf("faa w%d i%d: %v", w, i, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// All of that ran over at most MaxConnsPerPeer connections.
	f1.acceptMu.Lock()
	conns := len(f1.accepted)
	f1.acceptMu.Unlock()
	if conns > f0.cfg.MaxConnsPerPeer {
		t.Fatalf("%d server connections, cap %d", conns, f0.cfg.MaxConnsPerPeer)
	}
}

// TestMuxMidStreamPeerKill loads the pipeline with slow in-flight requests,
// kills the peer, and requires every caller to get a typed error promptly —
// no hangs, no lost completions.
func TestMuxMidStreamPeerKill(t *testing.T) {
	var inflight atomic.Int64
	release := make(chan struct{})
	f0, f1 := newPairCfg(t, func(node int, cfg *Config) {
		cfg.OpDeadline = 3 * time.Second
		cfg.MaxAttempts = 1
		cfg.RPCWorkers = 4
	})
	f1.SetDispatcher(1, func(req []byte) ([]byte, int64) {
		inflight.Add(1)
		<-release
		return req, 0
	})

	const callers = 12
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			clk := fabric.NewClock(0)
			_, err := f0.RoundTrip(clk, fabric.RankRef{Rank: i, Node: 0}, 1, []byte("doomed"))
			errs <- err
		}(i)
	}
	// Wait until the worker pool is saturated (the rest sit queued in the
	// server frame loop or in flight on the wire), then kill the peer.
	deadline := time.After(2 * time.Second)
	for inflight.Load() < 4 {
		select {
		case <-deadline:
			t.Fatalf("handlers never started: %d", inflight.Load())
		case <-time.After(time.Millisecond):
		}
	}
	f1.Close()
	close(release)

	for i := 0; i < callers; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("in-flight request reported success after peer death")
			}
			if !errors.Is(err, fabric.ErrNodeDown) && !errors.Is(err, fabric.ErrTimeout) {
				t.Fatalf("untyped error: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d hung after peer death", i)
		}
	}
}

// TestCloseDuringConcurrentOps races Close against callers that are mid-op
// — including ones whose mux died and are re-dialing. Close must return
// promptly (it may not wait behind a dial: getMux holds no lock across
// net.DialTimeout, and the peerMu -> p.mu order is never inverted) and
// every caller must come back with a typed error or a success, never hang.
func TestCloseDuringConcurrentOps(t *testing.T) {
	f0, f1 := newPairCfg(t, func(node int, cfg *Config) {
		cfg.OpDeadline = 2 * time.Second
		cfg.MaxAttempts = 2
	})
	f1.SetDispatcher(1, func(req []byte) ([]byte, int64) { return req, 0 })

	const callers = 16
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clk := fabric.NewClock(0)
			ref := fabric.RankRef{Rank: i, Node: 0}
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				_, err := f0.RoundTrip(clk, ref, 1, []byte("x"))
				if err != nil {
					if !errors.Is(err, fabric.ErrClosed) &&
						!errors.Is(err, fabric.ErrNodeDown) &&
						!errors.Is(err, fabric.ErrTimeout) {
						t.Errorf("caller %d op %d: untyped error %v", i, j, err)
					}
					return
				}
			}
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let callers get in flight

	closed := make(chan struct{})
	go func() { f0.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close blocked behind in-flight operations or dials")
	}
	close(stop)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("callers hung after Close")
	}
}

// TestMuxInFlightCap proves the client-side window: with MaxInFlight=2 and
// a generous server worker pool, the peer never observes more than two
// concurrent handler executions from this client.
func TestMuxInFlightCap(t *testing.T) {
	var cur, peak atomic.Int64
	f0, f1 := newPairCfg(t, func(node int, cfg *Config) {
		cfg.MaxInFlight = 2
		cfg.RPCWorkers = 16
	})
	f1.SetDispatcher(1, func(req []byte) ([]byte, int64) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		cur.Add(-1)
		return req, 0
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clk := fabric.NewClock(0)
			for i := 0; i < 20; i++ {
				if _, err := f0.RoundTrip(clk, fabric.RankRef{Rank: w, Node: 0}, 1, []byte("x")); err != nil {
					t.Errorf("rpc: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrent handlers %d, want <= 2", p)
	}
}

// TestOptionsMaxInFlightTightens checks that per-op options can narrow the
// window below the provider's configured cap but never widen it.
func TestOptionsMaxInFlightTightens(t *testing.T) {
	var cur, peak atomic.Int64
	f0, f1 := newPairCfg(t, func(node int, cfg *Config) {
		cfg.RPCWorkers = 16
	})
	f1.SetDispatcher(1, func(req []byte) ([]byte, int64) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		cur.Add(-1)
		return req, 0
	})
	view := f0.WithOptions(fabric.Options{MaxInFlight: 1})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clk := fabric.NewClock(0)
			for i := 0; i < 15; i++ {
				if _, err := view.RoundTrip(clk, fabric.RankRef{Rank: w, Node: 0}, 1, []byte("y")); err != nil {
					t.Errorf("rpc: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if p := peak.Load(); p > 1 {
		t.Fatalf("peak concurrent handlers %d, want <= 1", p)
	}
}

// TestLegacyPoolCap drives the one-exchange-per-connection mode with a
// burst far wider than the connection cap and checks the cap held: the
// server never sees more simultaneous sockets than MaxConnsPerPeer, and
// the idle pool never hoards surplus.
func TestLegacyPoolCap(t *testing.T) {
	const cap = 2
	f0, f1 := newPairCfg(t, func(node int, cfg *Config) {
		cfg.DisablePipelining = true
		cfg.MaxConnsPerPeer = cap
	})
	f1.SetDispatcher(1, func(req []byte) ([]byte, int64) {
		time.Sleep(100 * time.Microsecond)
		return req, 0
	})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clk := fabric.NewClock(0)
			for i := 0; i < 10; i++ {
				if _, err := f0.RoundTrip(clk, fabric.RankRef{Rank: w, Node: 0}, 1, []byte("z")); err != nil {
					t.Errorf("rpc: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	f1.acceptMu.Lock()
	conns := len(f1.accepted)
	f1.acceptMu.Unlock()
	if conns > cap {
		t.Fatalf("%d live server connections, cap %d", conns, cap)
	}
	p := f0.peer(1)
	p.mu.Lock()
	idle := len(p.idle)
	p.mu.Unlock()
	if idle > cap {
		t.Fatalf("%d idle connections pooled, cap %d", idle, cap)
	}
}

// TestPipeliningMetricsMove asserts the new transport actually records its
// series: every request samples fabric_inflight, and a concurrent burst
// coalesces at least some frames into shared flushes.
func TestPipeliningMetricsMove(t *testing.T) {
	col := metrics.New(1e6)
	f0, f1 := newPairCfg(t, func(node int, cfg *Config) {
		if node == 0 {
			cfg.Collector = col
		}
	})
	f1.SetDispatcher(1, func(req []byte) ([]byte, int64) { return req, 0 })

	burst := func() {
		var wg sync.WaitGroup
		for w := 0; w < 32; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				clk := fabric.NewClock(0)
				for i := 0; i < 20; i++ {
					if _, err := f0.RoundTrip(clk, fabric.RankRef{Rank: w, Node: 0}, 1, []byte("m")); err != nil {
						t.Errorf("rpc: %v", err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}

	burst()
	if got := col.Total(metrics.Inflight, 1); got <= 0 {
		t.Fatalf("fabric_inflight total = %v, want > 0", got)
	}
	// Coalescing needs the writer to find >1 queued frame on wakeup; with
	// 32 concurrent senders that is overwhelmingly likely per burst, but
	// retry a few times to keep the test schedule-proof.
	for i := 0; i < 20 && col.Total(metrics.FramesCoalesced, 1) == 0; i++ {
		burst()
	}
	if got := col.Total(metrics.FramesCoalesced, 1); got <= 0 {
		t.Fatalf("fabric_frames_coalesced total = %v, want > 0", got)
	}
}

// TestMuxGrowsSecondConnection checks the saturation escape hatch: with a
// one-deep window and a two-connection budget, concurrent traffic dials a
// second multiplexed connection instead of convoying.
func TestMuxGrowsSecondConnection(t *testing.T) {
	f0, f1 := newPairCfg(t, func(node int, cfg *Config) {
		cfg.MaxInFlight = 1
		cfg.MaxConnsPerPeer = 2
	})
	f1.SetDispatcher(1, func(req []byte) ([]byte, int64) {
		time.Sleep(200 * time.Microsecond)
		return req, 0
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clk := fabric.NewClock(0)
			for i := 0; i < 25; i++ {
				if _, err := f0.RoundTrip(clk, fabric.RankRef{Rank: w, Node: 0}, 1, []byte("g")); err != nil {
					t.Errorf("rpc: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	p := f0.peer(1)
	p.mu.Lock()
	n := len(p.muxes)
	p.mu.Unlock()
	if n < 2 {
		t.Fatalf("expected a second connection under saturation, have %d", n)
	}
	if n > 2 {
		t.Fatalf("connection budget exceeded: %d", n)
	}
}
