package tcpfab

import (
	"fmt"
	"testing"

	"hcl/internal/fabric"
	"hcl/internal/memory"
)

// benchPair starts two fabrics on loopback for benchmarking, node 1
// echoing RPCs.
func benchPair(b *testing.B, tweak func(cfg *Config)) (*Fabric, *Fabric) {
	b.Helper()
	mk := func(node int) *Fabric {
		cfg := Config{NodeID: node, Addrs: []string{"127.0.0.1:0", "127.0.0.1:0"}}
		if tweak != nil {
			tweak(&cfg)
		}
		f, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return f
	}
	a0 := mk(0)
	a1 := mk(1)
	addrs := []string{a0.Addr(), a1.Addr()}
	a0.SetAddrs(addrs)
	a1.SetAddrs(addrs)
	b.Cleanup(func() { a0.Close(); a1.Close() })
	a1.SetDispatcher(1, func(req []byte) ([]byte, int64) { return req, 0 })
	return a0, a1
}

// BenchmarkRoundTrip is the tentpole A/B: many concurrent clients hammering
// one remote node, multiplexed pipelining (mux) against the seed
// one-exchange-per-pooled-connection path (serial). Run with -benchmem; the
// acceptance numbers live in bench_results.txt.
func BenchmarkRoundTrip(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"mux", false},
		{"serial", true},
	} {
		for _, size := range []int{64, 4096} {
			b.Run(fmt.Sprintf("%s/%dB", mode.name, size), func(b *testing.B) {
				f0, _ := benchPair(b, func(cfg *Config) {
					cfg.DisablePipelining = mode.disable
				})
				payload := make([]byte, size)
				for i := range payload {
					payload[i] = byte(i)
				}
				b.SetBytes(int64(size))
				b.ReportAllocs()
				b.ResetTimer()
				// 8 client goroutines per core, all against node 1.
				b.SetParallelism(8)
				b.RunParallel(func(pb *testing.PB) {
					clk := fabric.NewClock(0)
					ref := fabric.RankRef{Rank: 0, Node: 0}
					for pb.Next() {
						resp, err := f0.RoundTrip(clk, ref, 1, payload)
						if err != nil {
							b.Error(err)
							return
						}
						if len(resp) != size {
							b.Errorf("resp %d bytes", len(resp))
							return
						}
					}
				})
			})
		}
	}
}

// BenchmarkOneSidedWrite compares the one-sided write verb across the two
// data paths (the frame loop applies these in order on the server).
func BenchmarkOneSidedWrite(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"mux", false},
		{"serial", true},
	} {
		b.Run(mode.name+"/64B", func(b *testing.B) {
			f0, f1 := benchPair(b, func(cfg *Config) {
				cfg.DisablePipelining = mode.disable
			})
			seg := memory.NewSegment(1 << 20)
			id := f0.RegisterSegment(1, nil)
			f1.RegisterSegment(1, seg)
			payload := make([]byte, 64)
			b.SetBytes(64)
			b.ReportAllocs()
			b.ResetTimer()
			b.SetParallelism(8)
			b.RunParallel(func(pb *testing.PB) {
				clk := fabric.NewClock(0)
				ref := fabric.RankRef{Rank: 0, Node: 0}
				for pb.Next() {
					if err := f0.Write(clk, ref, 1, id, 0, payload); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
