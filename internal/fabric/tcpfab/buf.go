package tcpfab

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Frame layout (both directions, little endian):
//
//	[len u32][typ u8][id u64][payload ...]
//
// len counts the payload only. id is the request id: chosen by the client,
// echoed verbatim by the server so responses can complete out of order on a
// multiplexed connection. Response payloads carry a status byte first
// (1 = ok, 0 = error string), written by the server's frame handlers.
//
// Traced frames set frameTraced on typ and prepend an extension to the
// payload region (len counts it): requests carry a trace.CtxWireLen-byte
// trace context, responses an 8-byte server residency (nanoseconds the
// request spent at the server, stub queue through execution) the client
// subtracts to attribute wire time without comparing clocks across
// machines. Untraced traffic is byte-identical to the pre-tracing format.
const frameHeaderLen = 4 + 1 + 8

// frameTraced flags a frame carrying a trace extension ahead of its
// payload. Kept out of the type switch via masking with ^frameTraced.
const frameTraced byte = 0x80

// maxFrameLen bounds a single payload; anything larger is a protocol error.
const maxFrameLen = 1 << 30

// maxPooledBuf keeps oversized one-off buffers (huge values, bulk reads)
// from pinning pool memory forever.
const maxPooledBuf = 1 << 20

// flusher is the writer the frame loops batch into: writeFrame calls
// accumulate, one Flush ships them. *bufio.Writer satisfies it.
type flusher interface {
	io.Writer
	Flush() error
}

// frameBuf is a pooled payload buffer. Ownership is explicit: whoever holds
// the *frameBuf either passes it on or calls release exactly once. The
// backing slice must not be retained past release.
type frameBuf struct{ b []byte }

var framePool = sync.Pool{New: func() any { return new(frameBuf) }}

// grabFrame returns a pooled buffer of length n.
func grabFrame(n int) *frameBuf {
	fb := framePool.Get().(*frameBuf)
	if cap(fb.b) < n {
		fb.b = make([]byte, n)
	}
	fb.b = fb.b[:n]
	return fb
}

// release returns the buffer to the pool. Safe on nil.
func (fb *frameBuf) release() {
	if fb == nil {
		return
	}
	if cap(fb.b) > maxPooledBuf {
		fb.b = nil
	}
	framePool.Put(fb)
}

// hdrScratch is a pooled frame-header buffer. A `var hdr
// [frameHeaderLen]byte` local escapes to the heap through the
// io.Writer/io.Reader interface parameter on every call — four of the
// five allocations a 64B mux round trip used to make were exactly these
// header temporaries (client write, server read, server write, client
// read). Routing every header through one pool makes frame emission and
// header reads allocation-free; the io.Writer/io.Reader contract (p is
// not retained past the call) makes returning the scratch immediately
// after the Write/ReadFull safe.
type hdrScratch struct{ b [frameHeaderLen]byte }

var hdrPool = sync.Pool{New: func() any { return new(hdrScratch) }}

// writeFrame emits one frame. The caller flushes; coalescing several
// writeFrame calls under a single Flush is the transport's batching lever.
func writeFrame(w io.Writer, typ byte, id uint64, payload []byte) error {
	hs := hdrPool.Get().(*hdrScratch)
	binary.LittleEndian.PutUint32(hs.b[:4], uint32(len(payload)))
	hs.b[4] = typ
	binary.LittleEndian.PutUint64(hs.b[5:], id)
	_, err := w.Write(hs.b[:])
	hdrPool.Put(hs)
	if err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// writeFrameExt emits one traced frame: the extension bytes ride between
// the header and the payload, counted in len.
func writeFrameExt(w io.Writer, typ byte, id uint64, ext, payload []byte) error {
	hs := hdrPool.Get().(*hdrScratch)
	binary.LittleEndian.PutUint32(hs.b[:4], uint32(len(ext)+len(payload)))
	hs.b[4] = typ
	binary.LittleEndian.PutUint64(hs.b[5:], id)
	_, err := w.Write(hs.b[:])
	hdrPool.Put(hs)
	if err != nil {
		return err
	}
	if _, err := w.Write(ext); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// readFrameHeader reads and validates one frame header.
func readFrameHeader(r io.Reader) (typ byte, id uint64, n int, err error) {
	hs := hdrPool.Get().(*hdrScratch)
	_, err = io.ReadFull(r, hs.b[:])
	ln := binary.LittleEndian.Uint32(hs.b[:4])
	typ = hs.b[4]
	id = binary.LittleEndian.Uint64(hs.b[5:])
	hdrPool.Put(hs)
	if err != nil {
		return 0, 0, 0, err
	}
	if ln > maxFrameLen {
		return 0, 0, 0, fmt.Errorf("tcpfab: oversized frame %d", ln)
	}
	return typ, id, int(ln), nil
}

// readFramePooled reads one frame into a pooled buffer (server request
// path: the payload dies with the handler).
func readFramePooled(r io.Reader) (typ byte, id uint64, pb *frameBuf, err error) {
	typ, id, n, err := readFrameHeader(r)
	if err != nil {
		return 0, 0, nil, err
	}
	pb = grabFrame(n)
	if _, err := io.ReadFull(r, pb.b); err != nil {
		pb.release()
		return 0, 0, nil, err
	}
	return typ, id, pb, nil
}

// readFrameAlloc reads one frame into a fresh allocation (client response
// path: RPC response bytes escape to the caller, so they cannot be pooled).
func readFrameAlloc(r io.Reader) (typ byte, id uint64, payload []byte, err error) {
	typ, id, n, err := readFrameHeader(r)
	if err != nil {
		return 0, 0, nil, err
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return typ, id, payload, nil
}

func appendSegOff(out []byte, seg, off int) []byte {
	out = binary.LittleEndian.AppendUint64(out, uint64(seg))
	return binary.LittleEndian.AppendUint64(out, uint64(off))
}

func putSegOff(dst []byte, seg, off int) {
	binary.LittleEndian.PutUint64(dst, uint64(seg))
	binary.LittleEndian.PutUint64(dst[8:], uint64(off))
}

func splitSegOff(b []byte) (seg, off int, rest []byte, err error) {
	if len(b) < 16 {
		return 0, 0, nil, errShortSegOff
	}
	return int(binary.LittleEndian.Uint64(b)), int(binary.LittleEndian.Uint64(b[8:])), b[16:], nil
}
