package tcpfab

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"testing"

	"hcl/internal/fabric"
	"hcl/internal/memory"
	"hcl/internal/seed"
)

// newPair starts two fabrics on loopback, wired to each other.
func newPair(t *testing.T) (*Fabric, *Fabric) {
	t.Helper()
	// Bootstrap: listen on ephemeral ports, then rebuild configs with
	// the resolved addresses.
	s := seed.FromEnv(t, 1) // retry-jitter seed; HCL_SEED overrides
	a0, err := New(Config{NodeID: 0, Seed: s, Addrs: []string{"127.0.0.1:0", "127.0.0.1:0"}})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := New(Config{NodeID: 1, Seed: s, Addrs: []string{"127.0.0.1:0", "127.0.0.1:0"}})
	if err != nil {
		a0.Close()
		t.Fatal(err)
	}
	addrs := []string{a0.Addr(), a1.Addr()}
	a0.cfg.Addrs = addrs
	a1.cfg.Addrs = addrs
	t.Cleanup(func() { a0.Close(); a1.Close() })
	return a0, a1
}

func TestRPCAcrossProcessesBoundary(t *testing.T) {
	f0, f1 := newPair(t)
	f1.SetDispatcher(1, func(req []byte) ([]byte, int64) {
		return []byte(strings.ToUpper(string(req))), 0
	})
	// Setting a remote node's dispatcher locally must be a no-op.
	f0.SetDispatcher(1, func(req []byte) ([]byte, int64) {
		return []byte("WRONG"), 0
	})
	clk := fabric.NewClock(0)
	resp, err := f0.RoundTrip(clk, fabric.RankRef{Rank: 0, Node: 0}, 1, []byte("hermes"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "HERMES" {
		t.Fatalf("resp = %q", resp)
	}
	if clk.Now() <= 0 {
		t.Fatal("wall time must advance the clock")
	}
}

func TestRPCLocalLoopback(t *testing.T) {
	f0, _ := newPair(t)
	f0.SetDispatcher(0, func(req []byte) ([]byte, int64) { return append(req, '!'), 0 })
	clk := fabric.NewClock(0)
	resp, err := f0.RoundTrip(clk, fabric.RankRef{}, 0, []byte("local"))
	if err != nil || string(resp) != "local!" {
		t.Fatalf("resp = %q, %v", resp, err)
	}
}

func TestOneSidedVerbsOverTCP(t *testing.T) {
	f0, f1 := newPair(t)
	// Symmetric registration: both processes register in the same order.
	seg1 := memory.NewSegment(4096)
	id0 := f0.RegisterSegment(1, nil) // remote placeholder on node 0's side
	id1 := f1.RegisterSegment(1, seg1)
	if id0 != id1 {
		t.Fatalf("asymmetric ids: %d vs %d", id0, id1)
	}
	clk := fabric.NewClock(0)
	ref := fabric.RankRef{Rank: 0, Node: 0}
	if err := f0.Write(clk, ref, 1, id0, 64, []byte("over the wire")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 13)
	if err := f0.Read(clk, ref, 1, id0, 64, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "over the wire" {
		t.Fatalf("read back %q", buf)
	}
	if v, ok, err := f0.CAS(clk, ref, 1, id0, 0, 0, 99); err != nil || !ok || v != 0 {
		t.Fatalf("CAS = %d,%v,%v", v, ok, err)
	}
	if v, ok, err := f0.CAS(clk, ref, 1, id0, 0, 0, 100); err != nil || ok || v != 99 {
		t.Fatalf("failed CAS = %d,%v,%v", v, ok, err)
	}
	// Local segment ops on the owner side go direct.
	if err := f1.Write(clk, fabric.RankRef{Node: 1}, 1, id1, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
}

func TestFetchAddOverTCP(t *testing.T) {
	f0, f1 := newPair(t)
	seg1 := memory.NewSegment(64)
	id0 := f0.RegisterSegment(1, nil)
	f1.RegisterSegment(1, seg1)
	clk := fabric.NewClock(0)
	ref := fabric.RankRef{Rank: 0, Node: 0}
	for want := uint64(0); want < 5; want++ {
		old, err := f0.FetchAdd(clk, ref, 1, id0, 0, 1)
		if err != nil || old != want {
			t.Fatalf("FAA = %d, %v (want %d)", old, err, want)
		}
	}
	if got := seg1.Load64(0); got != 5 {
		t.Fatalf("word = %d", got)
	}
	// Local fast path on the owner side.
	if old, err := f1.FetchAdd(clk, fabric.RankRef{Node: 1}, 1, id0, 0, 10); err != nil || old != 5 {
		t.Fatalf("local FAA = %d, %v", old, err)
	}
}

// TestReadLengthBounded feeds handleFrame read requests with hostile
// lengths: the peer-supplied u64 must be rejected before allocation — a
// huge value would OOM, and one >= 2^63 turns into a negative slice length
// and panics grabFrame.
func TestReadLengthBounded(t *testing.T) {
	f0, f1 := newPair(t)
	_ = f0
	seg1 := memory.NewSegment(64)
	id := f1.RegisterSegment(1, seg1)
	for _, want := range []uint64{maxFrameLen, 1 << 40, 1 << 63, ^uint64(0)} {
		pl := make([]byte, 24)
		putSegOff(pl, id, 0)
		binary.LittleEndian.PutUint64(pl[16:], want)
		out := f1.handleFrame(frameRead, pl)
		if out.b[0] != 0 {
			t.Fatalf("read length %d accepted", want)
		}
		out.release()
	}
	// Sanity: a bounded length still works.
	pl := make([]byte, 24)
	putSegOff(pl, id, 0)
	pl[16] = 8
	out := f1.handleFrame(frameRead, pl)
	if out.b[0] != 1 || len(out.b) != 9 {
		t.Fatalf("bounded read rejected: %v", out.b)
	}
	out.release()
}

func TestBadSegmentOverTCP(t *testing.T) {
	f0, _ := newPair(t)
	clk := fabric.NewClock(0)
	if err := f0.Write(clk, fabric.RankRef{}, 1, 42, 0, []byte("x")); err == nil {
		t.Fatal("write to unknown segment must fail")
	}
}

func TestRPCErrorPropagation(t *testing.T) {
	f0, f1 := newPair(t)
	_ = f1 // node 1 has no dispatcher
	clk := fabric.NewClock(0)
	if _, err := f0.RoundTrip(clk, fabric.RankRef{}, 1, []byte("x")); err == nil ||
		!strings.Contains(err.Error(), "no dispatcher") {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentExchanges(t *testing.T) {
	f0, f1 := newPair(t)
	f1.SetDispatcher(1, func(req []byte) ([]byte, int64) { return req, 0 })
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clk := fabric.NewClock(0)
			for i := 0; i < 50; i++ {
				msg := []byte(fmt.Sprintf("w%d-i%d", w, i))
				resp, err := f0.RoundTrip(clk, fabric.RankRef{Rank: w, Node: 0}, 1, msg)
				if err != nil || string(resp) != string(msg) {
					t.Errorf("exchange %s: %q %v", msg, resp, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestClosedFabric(t *testing.T) {
	f0, f1 := newPair(t)
	f1.SetDispatcher(1, func(req []byte) ([]byte, int64) { return req, 0 })
	f0.Close()
	clk := fabric.NewClock(0)
	if _, err := f0.RoundTrip(clk, fabric.RankRef{}, 1, []byte("x")); err == nil {
		t.Fatal("closed fabric must reject exchanges")
	}
	if err := f0.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{NodeID: 3, Addrs: []string{"127.0.0.1:0"}}); err == nil {
		t.Fatal("bad node id must fail")
	}
}

func TestLargePayloadRoundTrip(t *testing.T) {
	f0, f1 := newPair(t)
	f1.SetDispatcher(1, func(req []byte) ([]byte, int64) { return req, 0 })
	clk := fabric.NewClock(0)
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	resp, err := f0.RoundTrip(clk, fabric.RankRef{}, 1, big)
	if err != nil || len(resp) != len(big) {
		t.Fatalf("big exchange: %d bytes, %v", len(resp), err)
	}
	for i := 0; i < len(big); i += 4097 {
		if resp[i] != big[i] {
			t.Fatalf("corruption at %d", i)
		}
	}
}
