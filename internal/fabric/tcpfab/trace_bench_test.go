package tcpfab

import (
	"fmt"
	"testing"

	"hcl/internal/fabric"
	"hcl/internal/trace"
)

// BenchmarkRoundTripTraced is the tracing-overhead A/B against
// BenchmarkRoundTrip/mux: same mux data path, same payload sizes, but
// every operation carries a trace context and both endpoints record
// spans. The acceptance bar is < 10% regression versus the untraced
// mux numbers in bench_results.txt.
func BenchmarkRoundTripTraced(b *testing.B) {
	for _, size := range []int{64, 4096} {
		b.Run(fmt.Sprintf("mux/%dB", size), func(b *testing.B) {
			// One tracer per node, as in a real deployment where each
			// node is its own process; a single shared ring would add
			// client-vs-server lock contention no production setup pays.
			tr := trace.New(4096)
			f0, _ := benchPair(b, func(cfg *Config) {
				if cfg.NodeID == 0 {
					cfg.Tracer = tr
				} else {
					cfg.Tracer = trace.New(4096)
				}
			})
			payload := make([]byte, size)
			for i := range payload {
				payload[i] = byte(i)
			}
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			b.SetParallelism(8)
			b.RunParallel(func(pb *testing.PB) {
				clk := fabric.NewClock(0)
				ref := fabric.RankRef{Rank: 0, Node: 0}
				for pb.Next() {
					tc, _ := tr.StartTrace()
					clk.SetTrace(tc)
					resp, err := f0.RoundTrip(clk, ref, 1, payload)
					if err != nil {
						b.Error(err)
						return
					}
					if len(resp) != size {
						b.Errorf("resp %d bytes", len(resp))
						return
					}
				}
			})
		})
	}
}

type nopFlusher struct{}

func (nopFlusher) Write(p []byte) (int, error) { return len(p), nil }
func (nopFlusher) Flush() error                { return nil }

// TestFrameWriteZeroAlloc pins the per-frame cost of the trace plumbing:
// an untraced frame must allocate exactly what the plain writeFrame path
// always did (disabled tracing is free), and a traced frame's 17-byte
// extension must stay on the stack (no extra allocation beyond the
// shared frame-write baseline).
func TestFrameWriteZeroAlloc(t *testing.T) {
	var m mux
	payload := make([]byte, 64)

	base := testing.AllocsPerRun(200, func() {
		if err := writeFrame(nopFlusher{}, frameRPC, 1, payload); err != nil {
			t.Fatal(err)
		}
	})

	rq := &muxReq{id: 1, typ: frameRPC, payload: payload}
	if n := testing.AllocsPerRun(200, func() {
		var batchNS int64
		rq.state.Store(reqQueued)
		if ok, err := m.writeOne(nopFlusher{}, rq, &batchNS); !ok || err != nil {
			t.Fatalf("writeOne: ok=%v err=%v", ok, err)
		}
	}); n != base {
		t.Fatalf("untraced writeOne allocates %v per frame, baseline %v", n, base)
	}

	// Traced frames reuse the pooled record's ext scratch, so even the
	// 17-byte context costs nothing beyond the shared frame-write
	// baseline.
	trq := &muxReq{id: 2, typ: frameRPC, payload: payload,
		tc: trace.Ctx{TraceID: 7, Parent: 9}, traced: true}
	if n := testing.AllocsPerRun(200, func() {
		var batchNS int64
		trq.state.Store(reqQueued)
		if ok, err := m.writeOne(nopFlusher{}, trq, &batchNS); !ok || err != nil {
			t.Fatalf("writeOne: ok=%v err=%v", ok, err)
		}
	}); n != base {
		t.Fatalf("traced writeOne allocates %v per frame, baseline %v", n, base)
	}
}

// TestUntracedClockSkipsExtension: a request from a clock with no trace
// context goes out as a plain frame even when the fabric has a tracer —
// the traced wire format is strictly opt-in per operation.
func TestUntracedClockSkipsExtension(t *testing.T) {
	rq := grabReq(frameRPC, []byte("x"), trace.Ctx{})
	if rq.traced {
		t.Fatal("zero ctx marked traced")
	}
	rq.state.Store(reqQueued)
	var buf captureFlusher
	if ok, err := rq.writeTo(&buf); !ok || err != nil {
		t.Fatalf("write: ok=%v err=%v", ok, err)
	}
	if got := buf.b[4]; got&frameTraced != 0 {
		t.Fatalf("untraced frame carries frameTraced flag: %#x", got)
	}
	if wantLen := frameHeaderLen + 1; len(buf.b) != wantLen {
		t.Fatalf("frame length %d, want %d (no extension)", len(buf.b), wantLen)
	}
}

type captureFlusher struct{ b []byte }

func (c *captureFlusher) Write(p []byte) (int, error) { c.b = append(c.b, p...); return len(p), nil }
func (c *captureFlusher) Flush() error                { return nil }

// writeTo routes through the real writer entry point without needing a mux.
func (rq *muxReq) writeTo(bw flusher) (bool, error) {
	var m mux
	var batchNS int64
	return m.writeOne(bw, rq, &batchNS)
}
