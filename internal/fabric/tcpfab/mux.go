// Client-side multiplexed connection: many requests in flight over one TCP
// stream, the paper's RoR pipelining thesis (Section III-B, Fig 2) mapped
// onto sockets. A writer goroutine drains a send queue and coalesces queued
// frames into shared Flush syscalls; a reader goroutine demuxes responses
// to per-request completion channels by request id. Deadlines are enforced
// with per-request timers, never with connection deadlines — the stream is
// shared, so one slow request must not sever its neighbours.
package tcpfab

import (
	"encoding/binary"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hcl/internal/metrics"
	"hcl/internal/trace"
)

// muxReq states. A request is written at most once: the writer claims it
// (queued -> written) before touching the socket, and a timed-out waiter
// cancels it (queued -> canceled) so the writer skips it. Whoever wins the
// CAS decides whether the request ever reached the wire — this is what
// makes "request lost" vs "response lost" a provable distinction.
const (
	reqQueued int32 = iota
	reqWritten
	reqCanceled
)

type muxReq struct {
	id      uint64
	typ     byte
	payload []byte
	state   atomic.Int32
	resp    chan []byte // buffered 1; status-prefixed response payload

	// Tracing state. traced requests ship a context extension and expect
	// a residency extension back. sentAt is atomic because the writer
	// goroutine stamps it and the waiter reads it with no channel edge
	// between them; respAt and residency are written by the reader before
	// the resp send, which orders them for the waiter.
	traced    bool
	tc        trace.Ctx
	sentAt    atomic.Int64
	respAt    int64
	residency int64
	// ext is writeOne's scratch for the encoded context. It lives here
	// rather than on writeOne's stack because a local array escapes
	// through the io.Writer parameter of writeFrameExt — one heap
	// allocation per traced frame; the pooled record is already on the
	// heap.
	ext [trace.CtxWireLen]byte
}

// muxReqPool recycles request records. A record may be pooled only on the
// response path — after its value was received from resp — because that is
// the one point where provably no other goroutine (writer, reader) still
// holds it. Timeout and teardown paths leak the record to the GC instead.
var muxReqPool = sync.Pool{
	New: func() any { return &muxReq{resp: make(chan []byte, 1)} },
}

func grabReq(typ byte, payload []byte, tc trace.Ctx) *muxReq {
	rq := muxReqPool.Get().(*muxReq)
	rq.typ = typ
	rq.payload = payload
	rq.tc = tc
	rq.traced = tc.Valid()
	rq.sentAt.Store(0)
	rq.respAt = 0
	rq.residency = 0
	rq.state.Store(reqQueued)
	return rq
}

func putReq(rq *muxReq) {
	rq.payload = nil
	muxReqPool.Put(rq)
}

// timerPool recycles deadline timers (go1.23+ Stop/Reset semantics make
// reuse safe without draining the channel).
var timerPool sync.Pool

func grabTimer(d time.Duration) *time.Timer {
	if t, _ := timerPool.Get().(*time.Timer); t != nil {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func putTimer(t *time.Timer) {
	t.Stop()
	timerPool.Put(t)
}

// mux is one multiplexed connection to a peer.
type mux struct {
	f    *Fabric
	node int
	conn net.Conn

	sendq chan *muxReq

	pendMu  sync.Mutex
	pending map[uint64]*muxReq

	nextID   atomic.Uint64
	inflight atomic.Int64
	slotFree chan struct{} // capacity 1; nudged on every slot release

	down     chan struct{} // closed by teardown, after err is set
	err      error
	downOnce sync.Once

	lastArm time.Time // writeLoop only: last SetWriteDeadline arming
}

func newMux(f *Fabric, node int, conn net.Conn) *mux {
	m := &mux{
		f:        f,
		node:     node,
		conn:     conn,
		sendq:    make(chan *muxReq, 256),
		pending:  make(map[uint64]*muxReq),
		slotFree: make(chan struct{}, 1),
		down:     make(chan struct{}),
	}
	go m.writeLoop()
	go m.readLoop()
	return m
}

// teardown fails the connection exactly once: records the cause, wakes
// every waiter, unregisters from the peer table, and counts the loss of an
// established link (unless the whole fabric is closing, which is not a
// fault). Pending requests are not completed individually — waiters observe
// m.down and read m.err, which the channel close publishes.
func (m *mux) teardown(err error) {
	m.downOnce.Do(func() {
		m.err = err
		close(m.down)
		m.conn.Close()
		m.f.dropMux(m)
		if !m.f.closed.Load() {
			m.f.countWall(metrics.Reconnects, m.node)
		}
	})
}

// failure reports the teardown cause. Valid only after m.down is closed.
func (m *mux) failure() error { return m.err }

// writeLoop drains the send queue. Each wakeup writes every frame already
// queued, yields the processor once so senders made runnable in the
// meantime can enqueue too, drains again, and only then issues one Flush —
// under concurrent load many requests share a single syscall, which is
// where pipelining beats one-frame-per-flush. The yield matters most on
// few-core boxes, where the writer would otherwise ping-pong with a single
// sender and never find a second frame to coalesce.
func (m *mux) writeLoop() {
	bw := newBufWriter(m.conn)
	for {
		select {
		case rq := <-m.sendq:
			m.armWriteDeadline()
			wrote := 0
			var batchNS int64 // one wire-entry stamp per flush batch
			if ok, err := m.writeOne(bw, rq, &batchNS); err != nil {
				m.teardown(err)
				return
			} else if ok {
				wrote++
			}
			for pass := 0; ; pass++ {
				n, err := m.drainQueue(bw, &batchNS)
				if err != nil {
					m.teardown(err)
					return
				}
				wrote += n
				if pass >= 1 {
					break
				}
				runtime.Gosched()
			}
			if wrote > 0 {
				if err := bw.Flush(); err != nil {
					m.teardown(err)
					return
				}
				if wrote > 1 {
					m.f.countWallN(metrics.FramesCoalesced, m.node, float64(wrote))
				}
			}
		case <-m.down:
			return
		}
	}
}

// drainQueue writes every frame currently queued without blocking.
func (m *mux) drainQueue(bw flusher, batchNS *int64) (int, error) {
	wrote := 0
	for {
		select {
		case rq := <-m.sendq:
			ok, err := m.writeOne(bw, rq, batchNS)
			if err != nil {
				return wrote, err
			}
			if ok {
				wrote++
			}
		default:
			return wrote, nil
		}
	}
}

// armWriteDeadline bounds socket writes without paying a poller update per
// wakeup: the deadline is re-armed only once a second, so a wedged peer is
// detected within WriteTimeout plus that second of slack.
func (m *mux) armWriteDeadline() {
	wt := m.f.cfg.WriteTimeout
	if wt <= 0 {
		return
	}
	now := time.Now()
	if now.Sub(m.lastArm) < time.Second {
		return
	}
	m.lastArm = now
	m.conn.SetWriteDeadline(now.Add(wt))
}

// writeOne claims and writes a single queued frame. ok reports whether the
// frame actually went out (false: it had been canceled by a timed-out
// waiter, and its payload must no longer be touched). Traced frames are
// stamped with their wire-entry time — that boundary is what separates
// client-enqueue time from wire time. All frames of one flush batch
// share a stamp (*batchNS, read lazily on the first traced frame):
// they enter the socket together at the batch's single Flush, so a
// per-frame clock read would cost a serialized ~40ns for no accuracy.
func (m *mux) writeOne(bw flusher, rq *muxReq, batchNS *int64) (ok bool, err error) {
	if !rq.state.CompareAndSwap(reqQueued, reqWritten) {
		return false, nil
	}
	if rq.traced {
		if *batchNS == 0 {
			*batchNS = trace.NowNS()
		}
		rq.sentAt.Store(*batchNS)
		trace.PutCtx(rq.ext[:], rq.tc)
		return true, writeFrameExt(bw, rq.typ|frameTraced, rq.id, rq.ext[:], rq.payload)
	}
	return true, writeFrame(bw, rq.typ, rq.id, rq.payload)
}

// readLoop demuxes response frames to their waiters. Responses for ids
// nobody waits on (the waiter timed out and deregistered) are dropped —
// the connection stays healthy, unlike the one-exchange-per-socket design
// that had to kill the conn to discard a late response.
func (m *mux) readLoop() {
	br := newBufReader(m.conn)
	var stamp int64
	for {
		// A frame whose first bytes were already buffered arrived with
		// the previous syscall, so the previous stamp is its receive
		// time; only an empty buffer means the next frame costs a
		// syscall and needs a fresh clock read.
		fresh := br.Buffered() == 0
		typ, id, payload, err := readFrameAlloc(br)
		if err != nil {
			m.teardown(err)
			return
		}
		m.pendMu.Lock()
		rq := m.pending[id]
		delete(m.pending, id)
		m.pendMu.Unlock()
		if rq == nil {
			continue // late response; waiter gave up
		}
		if typ&^frameTraced != rq.typ {
			m.teardown(errBadResponseType(typ, rq.typ))
			return
		}
		if typ&frameTraced != 0 {
			if len(payload) < 8 {
				m.teardown(errShortTraceExt)
				return
			}
			if rq.traced {
				rq.residency = int64(binary.LittleEndian.Uint64(payload))
			}
			payload = payload[8:]
		}
		if rq.traced {
			if fresh || stamp == 0 {
				stamp = trace.NowNS()
			}
			rq.respAt = stamp
		}
		rq.resp <- payload
	}
}

// register adds a request to the pending table.
func (m *mux) register(rq *muxReq) {
	m.pendMu.Lock()
	m.pending[rq.id] = rq
	m.pendMu.Unlock()
}

// deregister removes a request, e.g. after a timeout.
func (m *mux) deregister(id uint64) {
	m.pendMu.Lock()
	delete(m.pending, id)
	m.pendMu.Unlock()
}

// acquireSlot blocks until the mux has fewer than limit requests in flight,
// the deadline passes (timerC fires), or the connection dies. It returns
// whether a slot was taken.
//
// slotFree has capacity 1, so two near-simultaneous releases can merge
// into a single token. A waiter that consumed a token therefore re-nudges
// on every exit — win or give up — so the possibly-merged second wakeup
// reaches another waiter instead of being swallowed (a spurious nudge just
// makes a waiter re-check and sleep again).
func (m *mux) acquireSlot(limit int, timerC <-chan time.Time) (ok bool, timedOut bool) {
	nudged := false
	renudge := func() {
		if !nudged {
			return
		}
		select {
		case m.slotFree <- struct{}{}:
		default:
		}
	}
	for {
		n := m.inflight.Load()
		if n < int64(limit) && m.inflight.CompareAndSwap(n, n+1) {
			renudge()
			return true, false
		}
		select {
		case <-m.slotFree:
			nudged = true
		case <-m.down:
			renudge()
			return false, false
		case <-timerC:
			renudge()
			return false, true
		}
	}
}

// releaseSlot frees an in-flight slot and nudges one waiter.
func (m *mux) releaseSlot() {
	m.inflight.Add(-1)
	select {
	case m.slotFree <- struct{}{}:
	default:
	}
}
