// Client-side multiplexed connection: many requests in flight over one TCP
// stream, the paper's RoR pipelining thesis (Section III-B, Fig 2) mapped
// onto sockets. A writer goroutine drains a send queue and coalesces queued
// frames into shared Flush syscalls; a reader goroutine demuxes responses
// to per-request completion channels by request id. Deadlines are enforced
// with per-request timers, never with connection deadlines — the stream is
// shared, so one slow request must not sever its neighbours.
package tcpfab

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hcl/internal/metrics"
)

// muxReq states. A request is written at most once: the writer claims it
// (queued -> written) before touching the socket, and a timed-out waiter
// cancels it (queued -> canceled) so the writer skips it. Whoever wins the
// CAS decides whether the request ever reached the wire — this is what
// makes "request lost" vs "response lost" a provable distinction.
const (
	reqQueued int32 = iota
	reqWritten
	reqCanceled
)

type muxReq struct {
	id      uint64
	typ     byte
	payload []byte
	state   atomic.Int32
	resp    chan []byte // buffered 1; status-prefixed response payload
}

// muxReqPool recycles request records. A record may be pooled only on the
// response path — after its value was received from resp — because that is
// the one point where provably no other goroutine (writer, reader) still
// holds it. Timeout and teardown paths leak the record to the GC instead.
var muxReqPool = sync.Pool{
	New: func() any { return &muxReq{resp: make(chan []byte, 1)} },
}

func grabReq(typ byte, payload []byte) *muxReq {
	rq := muxReqPool.Get().(*muxReq)
	rq.typ = typ
	rq.payload = payload
	rq.state.Store(reqQueued)
	return rq
}

func putReq(rq *muxReq) {
	rq.payload = nil
	muxReqPool.Put(rq)
}

// timerPool recycles deadline timers (go1.23+ Stop/Reset semantics make
// reuse safe without draining the channel).
var timerPool sync.Pool

func grabTimer(d time.Duration) *time.Timer {
	if t, _ := timerPool.Get().(*time.Timer); t != nil {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func putTimer(t *time.Timer) {
	t.Stop()
	timerPool.Put(t)
}

// mux is one multiplexed connection to a peer.
type mux struct {
	f    *Fabric
	node int
	conn net.Conn

	sendq chan *muxReq

	pendMu  sync.Mutex
	pending map[uint64]*muxReq

	nextID   atomic.Uint64
	inflight atomic.Int64
	slotFree chan struct{} // capacity 1; nudged on every slot release

	down     chan struct{} // closed by teardown, after err is set
	err      error
	downOnce sync.Once

	lastArm time.Time // writeLoop only: last SetWriteDeadline arming
}

func newMux(f *Fabric, node int, conn net.Conn) *mux {
	m := &mux{
		f:        f,
		node:     node,
		conn:     conn,
		sendq:    make(chan *muxReq, 256),
		pending:  make(map[uint64]*muxReq),
		slotFree: make(chan struct{}, 1),
		down:     make(chan struct{}),
	}
	go m.writeLoop()
	go m.readLoop()
	return m
}

// teardown fails the connection exactly once: records the cause, wakes
// every waiter, unregisters from the peer table, and counts the loss of an
// established link (unless the whole fabric is closing, which is not a
// fault). Pending requests are not completed individually — waiters observe
// m.down and read m.err, which the channel close publishes.
func (m *mux) teardown(err error) {
	m.downOnce.Do(func() {
		m.err = err
		close(m.down)
		m.conn.Close()
		m.f.dropMux(m)
		if !m.f.closed.Load() {
			m.f.countWall(metrics.Reconnects, m.node)
		}
	})
}

// failure reports the teardown cause. Valid only after m.down is closed.
func (m *mux) failure() error { return m.err }

// writeLoop drains the send queue. Each wakeup writes every frame already
// queued, yields the processor once so senders made runnable in the
// meantime can enqueue too, drains again, and only then issues one Flush —
// under concurrent load many requests share a single syscall, which is
// where pipelining beats one-frame-per-flush. The yield matters most on
// few-core boxes, where the writer would otherwise ping-pong with a single
// sender and never find a second frame to coalesce.
func (m *mux) writeLoop() {
	bw := newBufWriter(m.conn)
	for {
		select {
		case rq := <-m.sendq:
			m.armWriteDeadline()
			wrote := 0
			if ok, err := m.writeOne(bw, rq); err != nil {
				m.teardown(err)
				return
			} else if ok {
				wrote++
			}
			for pass := 0; ; pass++ {
				n, err := m.drainQueue(bw)
				if err != nil {
					m.teardown(err)
					return
				}
				wrote += n
				if pass >= 1 {
					break
				}
				runtime.Gosched()
			}
			if wrote > 0 {
				if err := bw.Flush(); err != nil {
					m.teardown(err)
					return
				}
				if wrote > 1 {
					m.f.countWallN(metrics.FramesCoalesced, m.node, float64(wrote))
				}
			}
		case <-m.down:
			return
		}
	}
}

// drainQueue writes every frame currently queued without blocking.
func (m *mux) drainQueue(bw flusher) (int, error) {
	wrote := 0
	for {
		select {
		case rq := <-m.sendq:
			ok, err := m.writeOne(bw, rq)
			if err != nil {
				return wrote, err
			}
			if ok {
				wrote++
			}
		default:
			return wrote, nil
		}
	}
}

// armWriteDeadline bounds socket writes without paying a poller update per
// wakeup: the deadline is re-armed only once a second, so a wedged peer is
// detected within WriteTimeout plus that second of slack.
func (m *mux) armWriteDeadline() {
	wt := m.f.cfg.WriteTimeout
	if wt <= 0 {
		return
	}
	now := time.Now()
	if now.Sub(m.lastArm) < time.Second {
		return
	}
	m.lastArm = now
	m.conn.SetWriteDeadline(now.Add(wt))
}

// writeOne claims and writes a single queued frame. ok reports whether the
// frame actually went out (false: it had been canceled by a timed-out
// waiter, and its payload must no longer be touched).
func (m *mux) writeOne(bw flusher, rq *muxReq) (ok bool, err error) {
	if !rq.state.CompareAndSwap(reqQueued, reqWritten) {
		return false, nil
	}
	return true, writeFrame(bw, rq.typ, rq.id, rq.payload)
}

// readLoop demuxes response frames to their waiters. Responses for ids
// nobody waits on (the waiter timed out and deregistered) are dropped —
// the connection stays healthy, unlike the one-exchange-per-socket design
// that had to kill the conn to discard a late response.
func (m *mux) readLoop() {
	br := newBufReader(m.conn)
	for {
		typ, id, payload, err := readFrameAlloc(br)
		if err != nil {
			m.teardown(err)
			return
		}
		m.pendMu.Lock()
		rq := m.pending[id]
		delete(m.pending, id)
		m.pendMu.Unlock()
		if rq == nil {
			continue // late response; waiter gave up
		}
		if typ != rq.typ {
			m.teardown(errBadResponseType(typ, rq.typ))
			return
		}
		rq.resp <- payload
	}
}

// register adds a request to the pending table.
func (m *mux) register(rq *muxReq) {
	m.pendMu.Lock()
	m.pending[rq.id] = rq
	m.pendMu.Unlock()
}

// deregister removes a request, e.g. after a timeout.
func (m *mux) deregister(id uint64) {
	m.pendMu.Lock()
	delete(m.pending, id)
	m.pendMu.Unlock()
}

// acquireSlot blocks until the mux has fewer than limit requests in flight,
// the deadline passes (timerC fires), or the connection dies. It returns
// whether a slot was taken.
//
// slotFree has capacity 1, so two near-simultaneous releases can merge
// into a single token. A waiter that consumed a token therefore re-nudges
// on every exit — win or give up — so the possibly-merged second wakeup
// reaches another waiter instead of being swallowed (a spurious nudge just
// makes a waiter re-check and sleep again).
func (m *mux) acquireSlot(limit int, timerC <-chan time.Time) (ok bool, timedOut bool) {
	nudged := false
	renudge := func() {
		if !nudged {
			return
		}
		select {
		case m.slotFree <- struct{}{}:
		default:
		}
	}
	for {
		n := m.inflight.Load()
		if n < int64(limit) && m.inflight.CompareAndSwap(n, n+1) {
			renudge()
			return true, false
		}
		select {
		case <-m.slotFree:
			nudged = true
		case <-m.down:
			renudge()
			return false, false
		case <-timerC:
			renudge()
			return false, true
		}
	}
}

// releaseSlot frees an in-flight slot and nudges one waiter.
func (m *mux) releaseSlot() {
	m.inflight.Add(-1)
	select {
	case m.slotFree <- struct{}{}:
	default:
	}
}
