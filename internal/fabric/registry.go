package fabric

import (
	"fmt"
	"sort"
	"sync"
)

// Factory opens a provider from an opaque, provider-specific
// configuration value (each provider documents the concrete type it
// expects — shmfab.Config for "shm", tcpfab.Config for "tcp").
type Factory func(cfg any) (Provider, error)

// The provider registry, in the style of database/sql drivers: providers
// register themselves from an init function, and transport-agnostic code
// (launchers, the facade) opens them by name without importing every
// provider package.
var registry = struct {
	mu sync.Mutex
	m  map[string]Factory
}{m: make(map[string]Factory)}

// Register installs a provider factory under name. Registering a
// duplicate name panics: two packages claiming one transport is a build
// wiring error, not a runtime condition.
func Register(name string, f Factory) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("fabric: provider %q registered twice", name))
	}
	registry.m[name] = f
}

// Open builds a provider by registered name. The cfg value is passed to
// the factory verbatim.
func Open(name string, cfg any) (Provider, error) {
	registry.mu.Lock()
	f, ok := registry.m[name]
	registry.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fabric: unknown provider %q (registered: %v)", name, Providers())
	}
	return f(cfg)
}

// Providers lists the registered provider names, sorted.
func Providers() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	names := make([]string, 0, len(registry.m))
	for n := range registry.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
