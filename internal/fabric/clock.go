package fabric

import "hcl/internal/trace"

// Clock is a per-actor virtual clock measured in nanoseconds. Exactly one
// goroutine owns a Clock; it is advanced by fabric verbs and by local
// data-structure work, and never moves backwards. Aggregating the final
// clocks of all ranks yields the modelled makespan of a parallel phase.
//
// The clock doubles as the per-operation trace conduit: every fabric verb
// already receives the caller's Clock, so the invocation layer stamps a
// trace context onto it before issuing a verb and providers read it back
// without any signature change. Single-ownership makes this race-free.
type Clock struct {
	now int64
	tr  trace.Ctx
}

// NewClock returns a clock starting at t virtual nanoseconds.
func NewClock(t int64) *Clock { return &Clock{now: t} }

// Now reports the current virtual time.
func (c *Clock) Now() int64 { return c.now }

// Advance moves the clock forward by d nanoseconds. Negative d is ignored.
func (c *Clock) Advance(d int64) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the clock to t if t is in the future.
func (c *Clock) AdvanceTo(t int64) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to t regardless of its current value. Only the
// benchmark harness uses this, between repeated phases.
func (c *Clock) Reset(t int64) { c.now = t }

// SetTrace stamps the trace context the next fabric verbs issued on this
// clock belong to. The zero Ctx clears it.
func (c *Clock) SetTrace(tc trace.Ctx) { c.tr = tc }

// Trace reports the trace context currently stamped on the clock.
func (c *Clock) Trace() trace.Ctx { return c.tr }
