package fabric

// Clock is a per-actor virtual clock measured in nanoseconds. Exactly one
// goroutine owns a Clock; it is advanced by fabric verbs and by local
// data-structure work, and never moves backwards. Aggregating the final
// clocks of all ranks yields the modelled makespan of a parallel phase.
type Clock struct {
	now int64
}

// NewClock returns a clock starting at t virtual nanoseconds.
func NewClock(t int64) *Clock { return &Clock{now: t} }

// Now reports the current virtual time.
func (c *Clock) Now() int64 { return c.now }

// Advance moves the clock forward by d nanoseconds. Negative d is ignored.
func (c *Clock) Advance(d int64) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the clock to t if t is in the future.
func (c *Clock) AdvanceTo(t int64) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to t regardless of its current value. Only the
// benchmark harness uses this, between repeated phases.
func (c *Clock) Reset(t int64) { c.now = t }
