package fabric

import "sync/atomic"

// Resource models a serially-reusable piece of hardware in virtual time: a
// network link, a NIC core, or a CAS-contended memory region. Reserving the
// resource for dur nanoseconds at local time t grants the window
// [max(t, nextFree), max(t, nextFree)+dur) and advances nextFree — the
// classic reservation discipline of conservative discrete-event simulation.
//
// The reservation is a single CAS loop, so it is safe under real goroutine
// concurrency and, in aggregate, insensitive to OS scheduling order: total
// busy time and queueing delay depend only on the multiset of requests.
type Resource struct {
	nextFree atomic.Int64
}

// Acquire reserves the resource for dur ns no earlier than now. It returns
// the start and end of the granted window. dur must be >= 0.
func (r *Resource) Acquire(now, dur int64) (start, end int64) {
	for {
		nf := r.nextFree.Load()
		start = now
		if nf > start {
			start = nf
		}
		end = start + dur
		if r.nextFree.CompareAndSwap(nf, end) {
			return start, end
		}
	}
}

// NextFree reports the earliest time a new reservation could start.
func (r *Resource) NextFree() int64 { return r.nextFree.Load() }

// BusyUntil forces the resource to be busy until at least t. Used when an
// external event (e.g. a posted response) occupies the resource.
func (r *Resource) BusyUntil(t int64) {
	for {
		nf := r.nextFree.Load()
		if nf >= t || r.nextFree.CompareAndSwap(nf, t) {
			return
		}
	}
}

// ResourcePool is a fixed set of interchangeable resources (e.g. the cores
// of a NIC). Acquire picks the member that can start earliest.
type ResourcePool struct {
	members []Resource
}

// NewResourcePool returns a pool of n resources. n must be >= 1.
func NewResourcePool(n int) *ResourcePool {
	if n < 1 {
		n = 1
	}
	return &ResourcePool{members: make([]Resource, n)}
}

// Size reports the number of members in the pool.
func (p *ResourcePool) Size() int { return len(p.members) }

// Acquire reserves dur ns on the member with the earliest availability.
// The choice races benignly with concurrent acquirers: a suboptimal pick
// only shifts which member absorbs the work, not the aggregate capacity.
func (p *ResourcePool) Acquire(now, dur int64) (start, end int64) {
	best := 0
	bestFree := p.members[0].NextFree()
	for i := 1; i < len(p.members); i++ {
		if nf := p.members[i].NextFree(); nf < bestFree {
			best, bestFree = i, nf
		}
		if bestFree <= now {
			break
		}
	}
	return p.members[best].Acquire(now, dur)
}

// BusyTime reports the sum of all members' nextFree marks; the profiler
// uses deltas of this as a proxy for cumulative busy time.
func (p *ResourcePool) BusyTime() int64 {
	var sum int64
	for i := range p.members {
		sum += p.members[i].NextFree()
	}
	return sum
}
