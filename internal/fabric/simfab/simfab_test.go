package simfab

import (
	"strings"
	"sync"
	"testing"

	"hcl/internal/fabric"
	"hcl/internal/memory"
	"hcl/internal/metrics"
)

func newFab(nodes int, col *metrics.Collector) *Fabric {
	return New(nodes, fabric.DefaultCostModel(), WithCollector(col))
}

func TestRoundTripExecutesDispatcher(t *testing.T) {
	f := newFab(2, nil)
	defer f.Close()
	f.SetDispatcher(1, func(req []byte) ([]byte, int64) {
		return append([]byte("echo:"), req...), 100
	})
	clk := fabric.NewClock(0)
	resp, err := f.RoundTrip(clk, fabric.RankRef{Rank: 0, Node: 0}, 1, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:ping" {
		t.Fatalf("resp = %q", resp)
	}
	cm := f.CostModel()
	// One round trip costs at least two one-way latencies plus the
	// handler's NIC time.
	min := 2*cm.InterNodeLatencyNS + cm.RPCHandlerNS + 100
	if clk.Now() < min {
		t.Fatalf("clock = %d, want >= %d", clk.Now(), min)
	}
}

func TestRoundTripNoDispatcher(t *testing.T) {
	f := newFab(2, nil)
	defer f.Close()
	clk := fabric.NewClock(0)
	if _, err := f.RoundTrip(clk, fabric.RankRef{}, 1, []byte("x")); err == nil {
		t.Fatal("expected error for missing dispatcher")
	}
}

func TestRoundTripBadNode(t *testing.T) {
	f := newFab(2, nil)
	defer f.Close()
	clk := fabric.NewClock(0)
	if _, err := f.RoundTrip(clk, fabric.RankRef{}, 7, nil); err != fabric.ErrBadNode {
		t.Fatalf("err = %v, want ErrBadNode", err)
	}
}

func TestIntraNodeCheaperThanInterNode(t *testing.T) {
	f := newFab(2, nil)
	defer f.Close()
	echo := func(req []byte) ([]byte, int64) { return req, 0 }
	f.SetDispatcher(0, echo)
	f.SetDispatcher(1, echo)

	local := fabric.NewClock(0)
	if _, err := f.RoundTrip(local, fabric.RankRef{Rank: 0, Node: 0}, 0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	remote := fabric.NewClock(0)
	if _, err := f.RoundTrip(remote, fabric.RankRef{Rank: 1, Node: 0}, 1, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if local.Now() >= remote.Now() {
		t.Fatalf("loopback RPC (%d) should be cheaper than remote RPC (%d)", local.Now(), remote.Now())
	}
}

func TestOneSidedWriteRead(t *testing.T) {
	f := newFab(2, nil)
	defer f.Close()
	seg := memory.NewSegment(4096)
	id := f.RegisterSegment(1, seg)
	clk := fabric.NewClock(0)
	ref := fabric.RankRef{Rank: 0, Node: 0}
	if err := f.Write(clk, ref, 1, id, 64, []byte("remote write")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 12)
	if err := f.Read(clk, ref, 1, id, 64, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "remote write" {
		t.Fatalf("read back %q", buf)
	}
	if clk.Now() <= 0 {
		t.Fatal("verbs must advance the clock")
	}
}

func TestOneSidedBadSegment(t *testing.T) {
	f := newFab(1, nil)
	defer f.Close()
	clk := fabric.NewClock(0)
	if err := f.Write(clk, fabric.RankRef{}, 0, 3, 0, []byte("x")); err != fabric.ErrBadSegment {
		t.Fatalf("err = %v, want ErrBadSegment", err)
	}
	if err := f.Read(clk, fabric.RankRef{}, 0, 3, 0, make([]byte, 1)); err != fabric.ErrBadSegment {
		t.Fatalf("err = %v, want ErrBadSegment", err)
	}
	if _, _, err := f.CAS(clk, fabric.RankRef{}, 0, 3, 0, 0, 1); err != fabric.ErrBadSegment {
		t.Fatalf("err = %v, want ErrBadSegment", err)
	}
}

func TestRemoteCASSemantics(t *testing.T) {
	f := newFab(2, nil)
	defer f.Close()
	seg := memory.NewSegment(64)
	id := f.RegisterSegment(1, seg)
	clk := fabric.NewClock(0)
	ref := fabric.RankRef{Rank: 0, Node: 0}
	if v, ok, err := f.CAS(clk, ref, 1, id, 0, 0, 42); err != nil || !ok || v != 0 {
		t.Fatalf("CAS = (%d,%v,%v)", v, ok, err)
	}
	if v, ok, err := f.CAS(clk, ref, 1, id, 0, 0, 43); err != nil || ok || v != 42 {
		t.Fatalf("failed CAS = (%d,%v,%v), want (42,false,nil)", v, ok, err)
	}
}

// Concurrent remote CAS operations on one segment serialize on the
// region's atomic unit: the makespan must be at least N * CASCost, which
// is the contention the paper identifies in BCL.
func TestRemoteCASSerialization(t *testing.T) {
	f := newFab(2, nil)
	defer f.Close()
	seg := memory.NewSegment(1 << 16)
	id := f.RegisterSegment(1, seg)
	const n = 64
	clocks := make([]*fabric.Clock, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		clocks[i] = fabric.NewClock(0)
		go func(i int) {
			defer wg.Done()
			// Different words, same region: still serialized.
			if _, _, err := f.CAS(clocks[i], fabric.RankRef{Rank: i, Node: 0}, 1, id, i*8, 0, 1); err != nil {
				t.Errorf("CAS: %v", err)
			}
		}(i)
	}
	wg.Wait()
	var makespan int64
	for _, c := range clocks {
		if c.Now() > makespan {
			makespan = c.Now()
		}
	}
	cm := f.CostModel()
	if min := int64(n) * cm.CASCostNS; makespan < min {
		t.Fatalf("makespan %d < %d: CAS did not serialize", makespan, min)
	}
}

func TestMetricsRecorded(t *testing.T) {
	col := metrics.New(1e9)
	f := newFab(2, col)
	defer f.Close()
	f.SetDispatcher(1, func(req []byte) ([]byte, int64) { return req, 50 })
	seg := memory.NewSegment(4096)
	id := f.RegisterSegment(1, seg)
	clk := fabric.NewClock(0)
	ref := fabric.RankRef{Rank: 0, Node: 0}
	if _, err := f.RoundTrip(clk, ref, 1, make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(clk, ref, 1, id, 0, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.CAS(clk, ref, 1, id, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if got := col.Total(metrics.RemoteInvokes, 1); got != 1 {
		t.Fatalf("RemoteInvokes = %v", got)
	}
	if got := col.Total(metrics.RemoteWrites, 1); got != 1 {
		t.Fatalf("RemoteWrites = %v", got)
	}
	if got := col.Total(metrics.RemoteCAS, 1); got != 1 {
		t.Fatalf("RemoteCAS = %v", got)
	}
	if got := col.Total(metrics.PacketsSent, 0); got < 3 {
		t.Fatalf("PacketsSent = %v, want >= 3", got)
	}
	if got := col.Total(metrics.NICBusyNS, 1); got <= 0 {
		t.Fatalf("NICBusyNS = %v", got)
	}
}

func TestLocalAccessAccounting(t *testing.T) {
	f := newFab(1, nil)
	defer f.Close()
	clk := fabric.NewClock(0)
	f.LocalAccess(clk, 0, 1<<20, 2)
	cm := f.CostModel()
	min := 2*cm.LocalOpNS + cm.MemTime(1<<20)
	if clk.Now() < min {
		t.Fatalf("LocalAccess advanced %d, want >= %d", clk.Now(), min)
	}
	// Local access must be far cheaper than the wire for the same bytes.
	if clk.Now() >= cm.WireTime(1<<20) {
		t.Fatal("local access should beat wire time")
	}
}

func TestAllocAccountingAndOOM(t *testing.T) {
	cm := fabric.DefaultCostModel()
	cm.NodeMemory = 1 << 20
	f := New(1, cm)
	defer f.Close()
	if err := f.Alloc(0, 1<<19, 0); err != nil {
		t.Fatal(err)
	}
	if got := f.Allocated(0); got != 1<<19 {
		t.Fatalf("Allocated = %d", got)
	}
	if err := f.Alloc(0, 1<<20, 0); err == nil {
		t.Fatal("expected OOM")
	} else if !strings.Contains(err.Error(), "out of memory") {
		t.Fatalf("unexpected error: %v", err)
	}
	f.Free(0, 1<<19, 0)
	if got := f.Allocated(0); got != 0 {
		t.Fatalf("Allocated after free = %d", got)
	}
	if err := f.Alloc(0, 1<<20, 0); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

func TestAccountantOf(t *testing.T) {
	f := newFab(1, nil)
	defer f.Close()
	if fabric.AccountantOf(f) != fabric.Accountant(f) {
		t.Fatal("AccountantOf(sim) should return the fabric itself")
	}
	if fabric.AccountantOf(nil) == nil {
		t.Fatal("AccountantOf(nil) should return a no-op accountant")
	}
	noop := fabric.AccountantOf(nil)
	if err := noop.Alloc(0, 1<<40, 0); err != nil {
		t.Fatal("no-op accountant must never fail")
	}
}

func TestClosedFabricRejectsVerbs(t *testing.T) {
	f := newFab(1, nil)
	f.SetDispatcher(0, func(req []byte) ([]byte, int64) { return req, 0 })
	seg := memory.NewSegment(64)
	id := f.RegisterSegment(0, seg)
	f.Close()
	clk := fabric.NewClock(0)
	if _, err := f.RoundTrip(clk, fabric.RankRef{}, 0, nil); err != fabric.ErrClosed {
		t.Fatalf("RoundTrip after close: %v", err)
	}
	if err := f.Write(clk, fabric.RankRef{}, 0, id, 0, []byte("x")); err != fabric.ErrClosed {
		t.Fatalf("Write after close: %v", err)
	}
}

func TestLinkSaturationPlateau(t *testing.T) {
	// Doubling offered load on one node's link must not double
	// throughput once saturated: makespan grows linearly with traffic.
	f := newFab(2, nil)
	defer f.Close()
	f.SetDispatcher(1, func(req []byte) ([]byte, int64) { return nil, 0 })
	run := func(clients int) int64 {
		clocks := make([]*fabric.Clock, clients)
		var wg sync.WaitGroup
		wg.Add(clients)
		for i := 0; i < clients; i++ {
			clocks[i] = fabric.NewClock(0)
			go func(i int) {
				defer wg.Done()
				for k := 0; k < 4; k++ {
					if _, err := f.RoundTrip(clocks[i], fabric.RankRef{Rank: i, Node: 0}, 1, make([]byte, 1<<20)); err != nil {
						t.Errorf("%v", err)
					}
				}
			}(i)
		}
		wg.Wait()
		var ms int64
		for _, c := range clocks {
			if c.Now() > ms {
				ms = c.Now()
			}
		}
		return ms
	}
	m8, m16 := run(8), run(16)
	if m16 < m8*3/2 {
		t.Fatalf("saturated link should stretch makespan: 8 clients %d, 16 clients %d", m8, m16)
	}
}
