package simfab

import (
	"errors"
	"testing"
	"time"

	"hcl/internal/fabric"
	"hcl/internal/memory"
	"hcl/internal/metrics"
)

// TestVirtualDeadlineOnRPC: a handler whose modelled cost exceeds the
// per-op deadline must surface ErrTimeout, with the caller's clock
// stopped exactly at the deadline — all in virtual time, no sleeping.
func TestVirtualDeadlineOnRPC(t *testing.T) {
	col := metrics.New(1e9)
	f := New(2, fabric.DefaultCostModel(), WithCollector(col))
	defer f.Close()
	f.SetDispatcher(1, func(req []byte) ([]byte, int64) {
		return req, int64(time.Second) // 1s of virtual NIC-core time
	})

	deadline := 5 * time.Millisecond
	v := f.WithOptions(fabric.Options{Deadline: deadline})
	clk := fabric.NewClock(0)
	ref := fabric.RankRef{Rank: 0, Node: 0}

	_, err := v.RoundTrip(clk, ref, 1, []byte("slow"))
	if !errors.Is(err, fabric.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if got := clk.Now(); got != deadline.Nanoseconds() {
		t.Fatalf("clock = %d, want exactly the deadline %d", got, deadline.Nanoseconds())
	}
	if n := col.Total(metrics.Timeouts, 1); n != 1 {
		t.Fatalf("timeouts counter = %v, want 1", n)
	}

	// A generous deadline lets the same call through.
	v2 := f.WithOptions(fabric.Options{Deadline: 10 * time.Second})
	resp, err := v2.RoundTrip(fabric.NewClock(0), ref, 1, []byte("ok"))
	if err != nil || string(resp) != "ok" {
		t.Fatalf("resp = %q, %v", resp, err)
	}
}

// TestVirtualDeadlineOnOneSided: deadlines bound one-sided verbs too, and
// deterministically so — the same program hits the same timeout on every
// run.
func TestVirtualDeadlineOnOneSided(t *testing.T) {
	cm := fabric.DefaultCostModel()
	f := New(2, cm)
	defer f.Close()
	seg := memory.NewSegment(1 << 20)
	id := f.RegisterSegment(1, seg)
	ref := fabric.RankRef{Rank: 0, Node: 0}

	// A 1MB transfer takes ~1MB/4.5GBps ≈ 222µs of wire time; a 1µs
	// deadline cannot cover it.
	v := f.WithOptions(fabric.Options{Deadline: time.Microsecond})
	clk := fabric.NewClock(0)
	big := make([]byte, 1<<20)
	if err := v.Write(clk, ref, 1, id, 0, big); !errors.Is(err, fabric.ErrTimeout) {
		t.Fatalf("write err = %v, want ErrTimeout", err)
	}
	if clk.Now() != time.Microsecond.Nanoseconds() {
		t.Fatalf("clock = %d, want 1000", clk.Now())
	}

	// Reads and CAS under a generous deadline still work and return data.
	v2 := f.WithOptions(fabric.Options{Deadline: time.Second}).(*optioned)
	if err := v2.Write(fabric.NewClock(0), ref, 1, id, 0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if err := v2.Read(fabric.NewClock(0), ref, 1, id, 0, buf); err != nil || string(buf) != "hello" {
		t.Fatalf("read %q, %v", buf, err)
	}
	if _, ok, err := v2.CAS(fabric.NewClock(0), ref, 1, id, 8, 0, 7); err != nil || !ok {
		t.Fatalf("cas ok=%v err=%v", ok, err)
	}
	if prev, err := v2.FetchAdd(fabric.NewClock(0), ref, 1, id, 8, 3); err != nil || prev != 7 {
		t.Fatalf("faa prev=%d err=%v", prev, err)
	}
}

// TestWithOptionsViewForwardsCapabilities: the deadline view must remain a
// full provider — cost model, accounting, and further WithOptions layering.
func TestWithOptionsViewForwardsCapabilities(t *testing.T) {
	f := New(2, fabric.DefaultCostModel())
	defer f.Close()
	v := f.WithOptions(fabric.Options{Deadline: time.Second})
	if fabric.ModelOf(v).NICCores != f.CostModel().NICCores {
		t.Fatal("Modeler capability lost through the view")
	}
	if fabric.AccountantOf(v).NodeMemory() != f.NodeMemory() {
		t.Fatal("Accountant capability lost through the view")
	}
	if v.NumNodes() != 2 || v.Name() != "sim" {
		t.Fatalf("view identity: %s/%d", v.Name(), v.NumNodes())
	}
	// Re-optioning merges rather than stacking views.
	v2 := fabric.WithOptions(v, fabric.Options{MaxAttempts: 2})
	if vv, ok := v2.(*optioned); !ok || vv.o.Deadline != time.Second || vv.o.MaxAttempts != 2 {
		t.Fatalf("merged view = %#v", v2)
	}
	// Zero options return the fabric itself.
	if f.WithOptions(fabric.Options{}) != fabric.Provider(f) {
		t.Fatal("zero options must be the identity")
	}
}
