package simfab

import (
	"hcl/internal/fabric"
	"hcl/internal/metrics"
)

// WithOptions implements fabric.Optioned: the returned view shares the
// fabric's nodes, segments, and dispatchers but bounds every verb by
// o.Deadline in *virtual* time. A verb whose modelled completion lands
// past the deadline returns fabric.ErrTimeout and advances the caller's
// clock only to the deadline instant — the caller stopped waiting there,
// even though the operation itself still executed at the target (exactly
// the unknown-outcome semantics of a real RDMA timeout). Virtual
// deadlines make timeout paths reproducible: the same program hits the
// same timeouts on every run, with no real sleeping.
func (f *Fabric) WithOptions(o fabric.Options) fabric.Provider {
	if o == (fabric.Options{}) {
		return f
	}
	return &optioned{f: f, o: o}
}

// optioned is the deadline-honoring view of a Fabric.
type optioned struct {
	f *Fabric
	o fabric.Options
}

var _ fabric.Provider = (*optioned)(nil)
var _ fabric.Optioned = (*optioned)(nil)

func (v *optioned) Name() string                                { return v.f.Name() }
func (v *optioned) NumNodes() int                               { return v.f.NumNodes() }
func (v *optioned) Close() error                                { return v.f.Close() }
func (v *optioned) SetDispatcher(n int, d fabric.Dispatcher)    { v.f.SetDispatcher(n, d) }
func (v *optioned) RegisterSegment(n int, s fabric.Segment) int { return v.f.RegisterSegment(n, s) }

// CostModel forwards the Modeler capability so RPC layers above the view
// still price handler work.
func (v *optioned) CostModel() fabric.CostModel { return v.f.CostModel() }

// Accountant capability forwarding: hybrid-path charging and memory
// accounting are unaffected by per-op options.
func (v *optioned) LocalAccess(clk *fabric.Clock, node, bytes, ops int) {
	v.f.LocalAccess(clk, node, bytes, ops)
}
func (v *optioned) Alloc(node int, n, now int64) error { return v.f.Alloc(node, n, now) }
func (v *optioned) Free(node int, n, now int64)        { v.f.Free(node, n, now) }
func (v *optioned) Allocated(node int) int64           { return v.f.Allocated(node) }
func (v *optioned) NodeMemory() int64                  { return v.f.NodeMemory() }

func (v *optioned) WithOptions(o fabric.Options) fabric.Provider {
	return v.f.WithOptions(v.o.Merge(o))
}

// settle applies the virtual deadline after an inner verb ran on a side
// clock: either syncs the caller to the completion time, or stops the
// caller at the deadline and converts the outcome to ErrTimeout.
func (v *optioned) settle(clk, side *fabric.Clock, node int, err error) error {
	d := v.o.Deadline.Nanoseconds()
	if d > 0 && side.Now() > clk.Now()+d {
		clk.Advance(d)
		if v.f.col != nil {
			v.f.col.Add(metrics.Timeouts, node, clk.Now(), 1)
		}
		return fabric.ErrTimeout
	}
	clk.AdvanceTo(side.Now())
	return err
}

func (v *optioned) RoundTrip(clk *fabric.Clock, from fabric.RankRef, node int, req []byte) ([]byte, error) {
	side := fabric.NewClock(clk.Now())
	resp, err := v.f.RoundTrip(side, from, node, req)
	if serr := v.settle(clk, side, node, err); serr != nil {
		return nil, serr
	}
	return resp, nil
}

func (v *optioned) Write(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, data []byte) error {
	side := fabric.NewClock(clk.Now())
	err := v.f.Write(side, from, node, seg, off, data)
	return v.settle(clk, side, node, err)
}

func (v *optioned) Read(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, buf []byte) error {
	side := fabric.NewClock(clk.Now())
	err := v.f.Read(side, from, node, seg, off, buf)
	return v.settle(clk, side, node, err)
}

func (v *optioned) CAS(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, old, new uint64) (uint64, bool, error) {
	side := fabric.NewClock(clk.Now())
	witness, ok, err := v.f.CAS(side, from, node, seg, off, old, new)
	if serr := v.settle(clk, side, node, err); serr != nil {
		return 0, false, serr
	}
	return witness, ok, nil
}

func (v *optioned) FetchAdd(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, delta uint64) (uint64, error) {
	side := fabric.NewClock(clk.Now())
	prev, err := v.f.FetchAdd(side, from, node, seg, off, delta)
	if serr := v.settle(clk, side, node, err); serr != nil {
		return 0, serr
	}
	return prev, nil
}
