// Package simfab implements fabric.Provider as a deterministic in-process
// discrete-event simulation. Every node owns a link resource (NIC
// bandwidth), a pool of NIC-core resources (which execute RPC handlers and
// service incoming packets), a shared memory-bandwidth resource, and one
// CAS-serialization resource per registered segment. Data still moves
// through real shared memory — only time is modelled.
package simfab

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hcl/internal/fabric"
	"hcl/internal/metrics"
	"hcl/internal/trace"
)

// Fabric is the simulated provider. Create one with New.
type Fabric struct {
	cm     fabric.CostModel
	nodes  []*node
	col    *metrics.Collector
	tr     *trace.Tracer
	closed atomic.Bool
}

type node struct {
	linkIn     fabric.Resource // ingress direction (full-duplex link)
	linkOut    fabric.Resource // egress direction
	mem        fabric.Resource
	nic        *fabric.ResourcePool
	dispatcher atomic.Pointer[fabric.Dispatcher]

	segMu  sync.RWMutex
	segs   []fabric.Segment
	casRes []*fabric.Resource

	allocated atomic.Int64
}

// Option configures a Fabric.
type Option func(*Fabric)

// WithCollector attaches a metrics collector; nil disables collection.
func WithCollector(c *metrics.Collector) Option {
	return func(f *Fabric) { f.col = c }
}

// WithTracer attaches a tracer; traced round trips then emit spans for the
// simulated wire, queueing, service, and response-pull phases. All span
// timestamps are virtual — the same program produces the same trace every
// run, which is what makes simulated traces diffable.
func WithTracer(t *trace.Tracer) Option {
	return func(f *Fabric) { f.tr = t }
}

// New returns a simulated fabric with n nodes using cost model cm.
func New(n int, cm fabric.CostModel, opts ...Option) *Fabric {
	if n < 1 {
		n = 1
	}
	f := &Fabric{cm: cm, nodes: make([]*node, n)}
	for i := range f.nodes {
		f.nodes[i] = &node{nic: fabric.NewResourcePool(cm.NICCores)}
	}
	for _, o := range opts {
		o(f)
	}
	return f
}

// Name implements fabric.Provider.
func (f *Fabric) Name() string { return "sim" }

// NumNodes implements fabric.Provider.
func (f *Fabric) NumNodes() int { return len(f.nodes) }

// CostModel returns the model the fabric was built with.
func (f *Fabric) CostModel() fabric.CostModel { return f.cm }

// Collector returns the attached metrics collector (possibly nil).
func (f *Fabric) Collector() *metrics.Collector { return f.col }

// Tracer returns the attached tracer (possibly nil).
func (f *Fabric) Tracer() *trace.Tracer { return f.tr }

// Close implements fabric.Provider.
func (f *Fabric) Close() error {
	f.closed.Store(true)
	return nil
}

func (f *Fabric) node(i int) (*node, error) {
	if i < 0 || i >= len(f.nodes) {
		return nil, fabric.ErrBadNode
	}
	return f.nodes[i], nil
}

// SetDispatcher implements fabric.Provider.
func (f *Fabric) SetDispatcher(nodeID int, d fabric.Dispatcher) {
	n, err := f.node(nodeID)
	if err != nil {
		panic(fmt.Sprintf("simfab: SetDispatcher(%d): %v", nodeID, err))
	}
	n.dispatcher.Store(&d)
}

// RegisterSegment implements fabric.Provider.
func (f *Fabric) RegisterSegment(nodeID int, seg fabric.Segment) int {
	n, err := f.node(nodeID)
	if err != nil {
		panic(fmt.Sprintf("simfab: RegisterSegment(%d): %v", nodeID, err))
	}
	n.segMu.Lock()
	defer n.segMu.Unlock()
	n.segs = append(n.segs, seg)
	n.casRes = append(n.casRes, &fabric.Resource{})
	return len(n.segs) - 1
}

func (n *node) segment(id int) (fabric.Segment, *fabric.Resource, error) {
	n.segMu.RLock()
	defer n.segMu.RUnlock()
	if id < 0 || id >= len(n.segs) {
		return nil, nil, fabric.ErrBadSegment
	}
	return n.segs[id], n.casRes[id], nil
}

// latency returns the one-way latency between two nodes.
func (f *Fabric) latency(a, b int) int64 {
	if a == b {
		return f.cm.IntraNodeLatencyNS
	}
	return f.cm.InterNodeLatencyNS
}

// transfer models moving n bytes from node a to node b in virtual time,
// starting no earlier than t. Links are full duplex: the sender's egress
// and the receiver's ingress are independent resources, reserved over the
// same window (cut-through), so a single large message sees the full link
// bandwidth while contention still charges both endpoints. Header-only
// messages do not reserve link time at all — a zero-length reservation at
// a future instant would otherwise discard the idle capacity between the
// link's horizon and that instant.
func (f *Fabric) transfer(a, b int, t int64, n int) int64 {
	// Sub-MTU control messages (headers, acks, tiny responses) do not
	// reserve link time: their serialization cost is noise, but a
	// reservation at a future instant would advance the link horizon
	// over idle capacity that pending bulk transfers (booked at earlier
	// instants) should have used — the reservation discipline has no
	// backfill, so tiny messages must not move the horizon.
	const smallMessage = 256
	wt := f.cm.WireTime(n)
	start, end := t, t
	if n >= smallMessage && wt > 0 {
		na, nb := f.nodes[a], f.nodes[b]
		start, end = na.linkOut.Acquire(t, wt)
		if a != b {
			_, end2 := nb.linkIn.Acquire(start, wt)
			if end2 > end {
				end = end2
			}
		}
	}
	arrive := end + f.latency(a, b)
	if f.col != nil {
		pk := float64(f.cm.Packets(n))
		f.col.AddSpan(metrics.PacketsSent, a, start, end, pk)
		f.col.AddSpan(metrics.PacketsRecv, b, start, arrive, pk)
	}
	return arrive
}

// nicService reserves NIC-core time at nodeID starting no earlier than t.
func (f *Fabric) nicService(nodeID int, t, cost int64) (start, end int64) {
	start, end = f.nodes[nodeID].nic.Acquire(t, cost)
	if f.col != nil && end > start {
		f.col.AddSpan(metrics.NICBusyNS, nodeID, start, end, float64(end-start))
	}
	return start, end
}

// RoundTrip implements fabric.Provider: RDMA_SEND of the request, handler
// execution on a NIC core of the target, and a client-pull RDMA_READ of
// the response (the paper's Figure 2 flow).
func (f *Fabric) RoundTrip(clk *fabric.Clock, from fabric.RankRef, nodeID int, req []byte) ([]byte, error) {
	yield()
	if f.closed.Load() {
		return nil, fabric.ErrClosed
	}
	tgt, err := f.node(nodeID)
	if err != nil {
		return nil, err
	}
	dp := tgt.dispatcher.Load()
	if dp == nil {
		return nil, fmt.Errorf("simfab: node %d has no dispatcher", nodeID)
	}

	// 1-2. Client stub posts the request; RDMA_SEND into the request
	// buffer at the target.
	clk.Advance(f.cm.SendPostNS)
	start0 := clk.Now()
	arrive := f.transfer(from.Node, nodeID, start0, len(req))

	// 3-5. A NIC core pulls the work-queue entry, runs the server stub,
	// and writes the response buffer. The dispatcher executes the real
	// handler against real memory and reports its modelled cost.
	resp, hcost := (*dp)(req)
	svc := f.cm.PerPacketNS*f.cm.Packets(len(req)) + f.cm.RPCHandlerNS + hcost
	svcStart, ready := f.nicService(nodeID, arrive, svc)

	// 6-7. Completion notification reaches the client, which pulls the
	// response with RDMA_READ.
	notified := ready + f.latency(nodeID, from.Node)
	pullFrom := notified + f.cm.ReadPostNS
	done := f.transfer(nodeID, from.Node, pullFrom, len(resp))
	clk.AdvanceTo(done)

	if f.col != nil {
		f.col.Add(metrics.RemoteInvokes, nodeID, arrive, 1)
	}
	if tc := clk.Trace(); f.tr != nil && tc.Valid() {
		// Sibling segments under the caller's root span, all on virtual
		// time: request flight, NIC-core queueing, service, response pull.
		// "nic.exec" is the modelled NIC-core occupancy; the engine's
		// "container.exec" span separately times the real handler.
		att := int(tc.Attempt)
		spans := [...]trace.Span{
			{Name: "wire", Start: start0, End: arrive},
			{Name: "server.queue", Start: arrive, End: svcStart},
			{Name: "nic.exec", Start: svcStart, End: ready},
			{Name: "response", Start: notified, End: done},
		}
		id := f.tr.NewIDs(len(spans))
		for i := range spans {
			spans[i].TraceID, spans[i].ID, spans[i].Parent = tc.TraceID, id+uint64(i), tc.Parent
			spans[i].Verb, spans[i].Node, spans[i].Attempt = "rpc", nodeID, att
		}
		f.tr.RecordBatch(spans[:]...)
	}
	return resp, nil
}

// Write implements fabric.Provider: a one-sided RDMA_WRITE.
func (f *Fabric) Write(clk *fabric.Clock, from fabric.RankRef, nodeID, segID, off int, data []byte) error {
	yield()
	if f.closed.Load() {
		return fabric.ErrClosed
	}
	tgt, err := f.node(nodeID)
	if err != nil {
		return err
	}
	seg, _, err := tgt.segment(segID)
	if err != nil {
		return err
	}
	clk.Advance(f.cm.SendPostNS)
	arrive := f.transfer(from.Node, nodeID, clk.Now(), len(data))
	_, end := f.nicService(nodeID, arrive, f.cm.PerPacketNS*f.cm.Packets(len(data)))
	if err := seg.WriteAt(off, data); err != nil {
		return err
	}
	// Hardware ack back to the initiator.
	clk.AdvanceTo(end + f.latency(nodeID, from.Node))
	if f.col != nil {
		f.col.Add(metrics.RemoteWrites, nodeID, arrive, 1)
	}
	return nil
}

// Read implements fabric.Provider: a one-sided RDMA_READ.
func (f *Fabric) Read(clk *fabric.Clock, from fabric.RankRef, nodeID, segID, off int, buf []byte) error {
	yield()
	if f.closed.Load() {
		return fabric.ErrClosed
	}
	tgt, err := f.node(nodeID)
	if err != nil {
		return err
	}
	seg, _, err := tgt.segment(segID)
	if err != nil {
		return err
	}
	clk.Advance(f.cm.ReadPostNS)
	// Header-only request travels out; data travels back.
	reqArrive := f.transfer(from.Node, nodeID, clk.Now(), 0)
	_, svcEnd := f.nicService(nodeID, reqArrive, f.cm.PerPacketNS*f.cm.Packets(len(buf)))
	if err := seg.ReadAt(off, buf); err != nil {
		return err
	}
	done := f.transfer(nodeID, from.Node, svcEnd, len(buf))
	clk.AdvanceTo(done)
	if f.col != nil {
		f.col.Add(metrics.RemoteReads, nodeID, reqArrive, 1)
	}
	return nil
}

// CAS implements fabric.Provider: a remote atomic compare-and-swap. All CAS
// verbs targeting the same segment serialize on that segment's atomic unit,
// reproducing the region-lock contention the paper attributes to BCL.
func (f *Fabric) CAS(clk *fabric.Clock, from fabric.RankRef, nodeID, segID, off int, old, new uint64) (uint64, bool, error) {
	yield()
	if f.closed.Load() {
		return 0, false, fabric.ErrClosed
	}
	tgt, err := f.node(nodeID)
	if err != nil {
		return 0, false, err
	}
	seg, casRes, err := tgt.segment(segID)
	if err != nil {
		return 0, false, err
	}
	clk.Advance(f.cm.SendPostNS)
	arrive := f.transfer(from.Node, nodeID, clk.Now(), 16) // two operands
	hold := f.cm.RemoteCASHoldNS
	if hold < f.cm.CASCostNS {
		hold = f.cm.CASCostNS
	}
	// The atomic is serviced by a NIC core, which stays occupied for the
	// whole hold (the paper: client CAS "are served by the RDMA
	// work-queue"), and serializes against other atomics on the region.
	_, svcEnd := f.nicService(nodeID, arrive, f.cm.PerPacketNS+hold)
	_, casEnd := casRes.Acquire(svcEnd-hold, hold)
	val, ok := seg.CAS64(off, old, new)
	if casEnd < svcEnd {
		casEnd = svcEnd
	}
	clk.AdvanceTo(casEnd + f.latency(nodeID, from.Node))
	if f.col != nil {
		f.col.Add(metrics.RemoteCAS, nodeID, arrive, 1)
	}
	return val, ok, nil
}

// FetchAdd implements fabric.Provider: a remote atomic fetch-and-add,
// serviced like CAS (NIC core + region serialization) but never retried.
func (f *Fabric) FetchAdd(clk *fabric.Clock, from fabric.RankRef, nodeID, segID, off int, delta uint64) (uint64, error) {
	yield()
	if f.closed.Load() {
		return 0, fabric.ErrClosed
	}
	tgt, err := f.node(nodeID)
	if err != nil {
		return 0, err
	}
	seg, casRes, err := tgt.segment(segID)
	if err != nil {
		return 0, err
	}
	clk.Advance(f.cm.SendPostNS)
	arrive := f.transfer(from.Node, nodeID, clk.Now(), 8)
	hold := f.cm.RemoteCASHoldNS
	if hold < f.cm.CASCostNS {
		hold = f.cm.CASCostNS
	}
	_, svcEnd := f.nicService(nodeID, arrive, f.cm.PerPacketNS+hold)
	_, casEnd := casRes.Acquire(svcEnd-hold, hold)
	newV := seg.Add64(off, delta)
	if casEnd < svcEnd {
		casEnd = svcEnd
	}
	clk.AdvanceTo(casEnd + f.latency(nodeID, from.Node))
	if f.col != nil {
		f.col.Add(metrics.RemoteCAS, nodeID, arrive, 1)
	}
	return newV - delta, nil
}

// LocalAccess implements fabric.Accountant: the hybrid-path cost of ops
// short local operations plus bytes moved through node memory bandwidth.
func (f *Fabric) LocalAccess(clk *fabric.Clock, nodeID int, bytes, ops int) {
	n, err := f.node(nodeID)
	if err != nil {
		return
	}
	clk.Advance(int64(ops) * f.cm.LocalOpNS)
	if bytes > 0 {
		_, end := n.mem.Acquire(clk.Now(), f.cm.MemTime(bytes))
		clk.AdvanceTo(end)
	}
	if f.col != nil {
		f.col.Add(metrics.LocalOps, nodeID, clk.Now(), float64(ops))
	}
}

// Alloc implements fabric.Accountant.
func (f *Fabric) Alloc(nodeID int, n int64, now int64) error {
	nd, err := f.node(nodeID)
	if err != nil {
		return err
	}
	for {
		cur := nd.allocated.Load()
		if cur+n > f.cm.NodeMemory {
			return fmt.Errorf("simfab: node %d out of memory: %d + %d > %d bytes",
				nodeID, cur, n, f.cm.NodeMemory)
		}
		if nd.allocated.CompareAndSwap(cur, cur+n) {
			break
		}
	}
	if f.col != nil {
		f.col.Add(metrics.BytesAlloc, nodeID, now, float64(n))
	}
	return nil
}

// Free implements fabric.Accountant.
func (f *Fabric) Free(nodeID int, n int64, now int64) {
	nd, err := f.node(nodeID)
	if err != nil {
		return
	}
	nd.allocated.Add(-n)
	if f.col != nil {
		f.col.Add(metrics.BytesAlloc, nodeID, now, -float64(n))
	}
}

// Allocated implements fabric.Accountant.
func (f *Fabric) Allocated(nodeID int) int64 {
	nd, err := f.node(nodeID)
	if err != nil {
		return 0
	}
	return nd.allocated.Load()
}

// NodeMemory implements fabric.Accountant.
func (f *Fabric) NodeMemory() int64 { return f.cm.NodeMemory }

var _ fabric.Provider = (*Fabric)(nil)
var _ fabric.Accountant = (*Fabric)(nil)

// yield hands the processor to other rank goroutines before each verb, so
// the real execution order tracks virtual arrival order closely. The
// reservation discipline is order-sensitive: without interleaving, one
// rank could book its entire sequential op stream before its peers run,
// inverting the queueing the cost model is meant to produce.
func yield() { runtime.Gosched() }
