package simfab

import (
	"sync"
	"testing"

	"hcl/internal/fabric"
	"hcl/internal/memory"
)

func TestFetchAddSemantics(t *testing.T) {
	f := New(2, fabric.DefaultCostModel())
	defer f.Close()
	seg := memory.NewSegment(64)
	id := f.RegisterSegment(1, seg)
	clk := fabric.NewClock(0)
	ref := fabric.RankRef{Rank: 0, Node: 0}

	old, err := f.FetchAdd(clk, ref, 1, id, 0, 5)
	if err != nil || old != 0 {
		t.Fatalf("first FAA = %d, %v", old, err)
	}
	old, err = f.FetchAdd(clk, ref, 1, id, 0, 3)
	if err != nil || old != 5 {
		t.Fatalf("second FAA = %d, %v", old, err)
	}
	if got := seg.Load64(0); got != 8 {
		t.Fatalf("word = %d", got)
	}
	if clk.Now() <= 0 {
		t.Fatal("FAA must cost virtual time")
	}
}

func TestFetchAddConcurrentTicketsUnique(t *testing.T) {
	f := New(2, fabric.DefaultCostModel())
	defer f.Close()
	seg := memory.NewSegment(64)
	id := f.RegisterSegment(1, seg)
	const workers, per = 8, 200
	tickets := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clk := fabric.NewClock(0)
			for i := 0; i < per; i++ {
				tk, err := f.FetchAdd(clk, fabric.RankRef{Rank: w, Node: 0}, 1, id, 0, 1)
				if err != nil {
					t.Errorf("FAA: %v", err)
					return
				}
				tickets[w] = append(tickets[w], tk)
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool, workers*per)
	for _, ts := range tickets {
		for _, tk := range ts {
			if seen[tk] {
				t.Fatalf("duplicate ticket %d", tk)
			}
			seen[tk] = true
		}
	}
	if len(seen) != workers*per {
		t.Fatalf("%d distinct tickets, want %d", len(seen), workers*per)
	}
}

func TestFetchAddErrors(t *testing.T) {
	f := New(1, fabric.DefaultCostModel())
	clk := fabric.NewClock(0)
	if _, err := f.FetchAdd(clk, fabric.RankRef{}, 0, 9, 0, 1); err != fabric.ErrBadSegment {
		t.Fatalf("bad segment: %v", err)
	}
	if _, err := f.FetchAdd(clk, fabric.RankRef{}, 5, 0, 0, 1); err != fabric.ErrBadNode {
		t.Fatalf("bad node: %v", err)
	}
	f.Close()
	if _, err := f.FetchAdd(clk, fabric.RankRef{}, 0, 0, 0, 1); err != fabric.ErrClosed {
		t.Fatalf("closed: %v", err)
	}
}
