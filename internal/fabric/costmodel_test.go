package fabric

import "testing"

func TestDefaultCostModelSanity(t *testing.T) {
	m := DefaultCostModel()
	if m.InterNodeLatencyNS <= m.IntraNodeLatencyNS {
		t.Fatal("inter-node latency must exceed intra-node latency")
	}
	if m.MemBandwidth <= m.LinkBandwidth {
		t.Fatal("memory bandwidth must exceed link bandwidth (hybrid model premise)")
	}
	if m.NICCores < 1 {
		t.Fatal("need at least one NIC core")
	}
	if m.NodeMemory != 96<<30 {
		t.Fatalf("NodeMemory = %d, want 96 GiB (Ares node)", m.NodeMemory)
	}
}

func TestPackets(t *testing.T) {
	m := DefaultCostModel() // MTU 4096
	cases := []struct {
		n    int
		want int64
	}{
		{0, 1}, {-5, 1}, {1, 1}, {4096, 1}, {4097, 2}, {8192, 2}, {1 << 20, 256},
	}
	for _, c := range cases {
		if got := m.Packets(c.n); got != c.want {
			t.Errorf("Packets(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestWireAndMemTime(t *testing.T) {
	m := DefaultCostModel()
	// 4.5 GB transferred at 4.5 GB/s takes one virtual second.
	if got := m.WireTime(int(4.5e9)); got < 999_000_000 || got > 1_001_000_000 {
		t.Fatalf("WireTime(4.5GB) = %d ns, want ~1e9", got)
	}
	if m.WireTime(0) != 0 || m.MemTime(0) != 0 {
		t.Fatal("zero-byte transfers must be free")
	}
	if m.MemTime(1<<20) >= m.WireTime(1<<20) {
		t.Fatal("memory copies must be faster than wire transfers")
	}
}

func TestPacketsZeroMTU(t *testing.T) {
	m := CostModel{MTU: 0}
	if got := m.Packets(4096); got != 1 {
		t.Fatalf("Packets with zero MTU should default to 4096: got %d", got)
	}
}
