package fabric

import "time"

// Backoff is a capped exponential retry schedule with full jitter
// (AWS-style): the pre-jitter ceiling grows as Base·Factor^attempt up to
// Cap, and the actual pause is drawn uniformly from [0, ceiling). Full
// jitter decorrelates the retry storms that fixed schedules produce when
// many ranks lose the same peer at the same instant.
//
// The schedule is a pure function of (attempt, rnd), so tests exercise it
// without sleeping and fault injectors replay it in virtual time.
type Backoff struct {
	// Base is the ceiling of the first retry pause (default 2ms).
	Base time.Duration
	// Cap clamps the ceiling (default 250ms).
	Cap time.Duration
	// Factor is the per-attempt growth multiplier (default 2).
	Factor float64
}

// DefaultBackoff returns the schedule used by tcpfab and faultfab unless
// overridden: 2ms base, 250ms cap, doubling.
func DefaultBackoff() Backoff {
	return Backoff{Base: 2 * time.Millisecond, Cap: 250 * time.Millisecond, Factor: 2}
}

// withDefaults fills zero fields so a partially-specified (or zero-value)
// Backoff is usable.
func (b Backoff) withDefaults() Backoff {
	d := DefaultBackoff()
	if b.Base <= 0 {
		b.Base = d.Base
	}
	if b.Cap <= 0 {
		b.Cap = d.Cap
	}
	if b.Factor < 1 {
		b.Factor = d.Factor
	}
	return b
}

// Ceiling returns the pre-jitter pause bound before retry attempt
// (0-based): min(Cap, Base·Factor^attempt).
func (b Backoff) Ceiling(attempt int) time.Duration {
	b = b.withDefaults()
	c := float64(b.Base)
	for i := 0; i < attempt; i++ {
		c *= b.Factor
		if c >= float64(b.Cap) {
			return b.Cap
		}
	}
	if c > float64(b.Cap) {
		c = float64(b.Cap)
	}
	return time.Duration(c)
}

// Delay returns the jittered pause before retry attempt (0-based), with
// rnd uniform in [0,1): rnd·Ceiling(attempt). A degenerate rnd outside
// [0,1) is clamped.
func (b Backoff) Delay(attempt int, rnd float64) time.Duration {
	if rnd < 0 {
		rnd = 0
	}
	if rnd >= 1 {
		rnd = 1 - 1e-9
	}
	return time.Duration(rnd * float64(b.Ceiling(attempt)))
}
