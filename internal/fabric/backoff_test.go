package fabric

import (
	"testing"
	"time"
)

func TestBackoffCeilingGrowsAndCaps(t *testing.T) {
	b := Backoff{Base: 2 * time.Millisecond, Cap: 250 * time.Millisecond, Factor: 2}
	want := []time.Duration{
		2 * time.Millisecond,   // attempt 0
		4 * time.Millisecond,   // attempt 1
		8 * time.Millisecond,   // attempt 2
		16 * time.Millisecond,  // attempt 3
		32 * time.Millisecond,  // attempt 4
		64 * time.Millisecond,  // attempt 5
		128 * time.Millisecond, // attempt 6
		250 * time.Millisecond, // attempt 7: 256ms clamped to cap
		250 * time.Millisecond, // attempt 8: stays at cap
	}
	for i, w := range want {
		if got := b.Ceiling(i); got != w {
			t.Errorf("Ceiling(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBackoffDelayJitterBounds(t *testing.T) {
	b := DefaultBackoff()
	for attempt := 0; attempt < 10; attempt++ {
		ceil := b.Ceiling(attempt)
		if d := b.Delay(attempt, 0); d != 0 {
			t.Errorf("Delay(%d, 0) = %v, want 0 (full jitter reaches zero)", attempt, d)
		}
		if d := b.Delay(attempt, 0.5); d != ceil/2 {
			t.Errorf("Delay(%d, 0.5) = %v, want %v", attempt, d, ceil/2)
		}
		if d := b.Delay(attempt, 0.999999); d >= ceil {
			t.Errorf("Delay(%d, ~1) = %v, must stay below ceiling %v", attempt, d, ceil)
		}
	}
}

func TestBackoffDegenerateInputsClamped(t *testing.T) {
	b := DefaultBackoff()
	if d := b.Delay(3, -5); d != 0 {
		t.Errorf("negative rnd: %v, want 0", d)
	}
	if d := b.Delay(3, 7); d >= b.Ceiling(3)+time.Millisecond {
		t.Errorf("rnd > 1 must clamp near ceiling, got %v", d)
	}
	// A zero-value Backoff is usable via defaults.
	var z Backoff
	if z.Ceiling(0) != DefaultBackoff().Base {
		t.Errorf("zero Backoff Ceiling(0) = %v, want default base", z.Ceiling(0))
	}
}

func TestBackoffHugeAttemptStaysAtCap(t *testing.T) {
	b := DefaultBackoff()
	if got := b.Ceiling(1000); got != b.Cap {
		t.Errorf("Ceiling(1000) = %v, want cap %v (no float overflow)", got, b.Cap)
	}
}

func TestOptionsMerge(t *testing.T) {
	base := Options{Deadline: time.Second, MaxAttempts: 3}
	over := Options{Deadline: 200 * time.Millisecond, RetryRPC: true}
	m := base.Merge(over)
	if m.Deadline != 200*time.Millisecond || m.MaxAttempts != 3 || !m.RetryRPC {
		t.Errorf("merge = %+v", m)
	}
	if m2 := base.Merge(Options{}); m2 != base {
		t.Errorf("merge with zero changed options: %+v", m2)
	}
}
