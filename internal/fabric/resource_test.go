package fabric

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestResourceSerialReservation(t *testing.T) {
	var r Resource
	s1, e1 := r.Acquire(0, 100)
	if s1 != 0 || e1 != 100 {
		t.Fatalf("first acquire = [%d,%d), want [0,100)", s1, e1)
	}
	// Second request at t=10 must queue behind the first.
	s2, e2 := r.Acquire(10, 50)
	if s2 != 100 || e2 != 150 {
		t.Fatalf("queued acquire = [%d,%d), want [100,150)", s2, e2)
	}
	// A request far in the future starts at its own time (idle gap).
	s3, e3 := r.Acquire(1000, 5)
	if s3 != 1000 || e3 != 1005 {
		t.Fatalf("future acquire = [%d,%d), want [1000,1005)", s3, e3)
	}
}

func TestResourceZeroDuration(t *testing.T) {
	var r Resource
	s, e := r.Acquire(42, 0)
	if s != 42 || e != 42 {
		t.Fatalf("zero-duration acquire = [%d,%d)", s, e)
	}
}

func TestResourceBusyUntil(t *testing.T) {
	var r Resource
	r.BusyUntil(500)
	if nf := r.NextFree(); nf != 500 {
		t.Fatalf("NextFree = %d, want 500", nf)
	}
	r.BusyUntil(100) // must not rewind
	if nf := r.NextFree(); nf != 500 {
		t.Fatalf("BusyUntil(past) rewound to %d", nf)
	}
	s, _ := r.Acquire(0, 10)
	if s != 500 {
		t.Fatalf("acquire after BusyUntil starts at %d, want 500", s)
	}
}

// Total busy time on a serial resource equals the sum of requested
// durations regardless of concurrency: the reservation CAS loop cannot
// lose or overlap windows.
func TestResourceConcurrentConservation(t *testing.T) {
	var r Resource
	const workers = 16
	const perWorker = 200
	const dur = 7
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s, e := r.Acquire(0, dur)
				if e-s != dur {
					t.Errorf("window length %d, want %d", e-s, dur)
					return
				}
			}
		}()
	}
	wg.Wait()
	if nf := r.NextFree(); nf != workers*perWorker*dur {
		t.Fatalf("NextFree = %d, want %d (no lost/overlapping windows)", nf, workers*perWorker*dur)
	}
}

// Property: acquisitions always yield windows of the requested duration
// starting no earlier than the request time, and NextFree never decreases.
func TestResourceProperties(t *testing.T) {
	var r Resource
	prevFree := int64(0)
	prop := func(now uint16, dur uint8) bool {
		s, e := r.Acquire(int64(now), int64(dur))
		if s < int64(now) || e-s != int64(dur) {
			return false
		}
		nf := r.NextFree()
		if nf < prevFree {
			return false
		}
		prevFree = nf
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestResourcePoolParallelism(t *testing.T) {
	p := NewResourcePool(4)
	if p.Size() != 4 {
		t.Fatalf("Size = %d", p.Size())
	}
	// Four simultaneous requests fit in parallel: all start at 0.
	for i := 0; i < 4; i++ {
		s, _ := p.Acquire(0, 100)
		if s != 0 {
			t.Fatalf("request %d started at %d, want 0 (idle member available)", i, s)
		}
	}
	// The fifth queues behind one of them.
	s, _ := p.Acquire(0, 100)
	if s != 100 {
		t.Fatalf("fifth request started at %d, want 100", s)
	}
}

func TestResourcePoolMinSize(t *testing.T) {
	p := NewResourcePool(0)
	if p.Size() != 1 {
		t.Fatalf("pool of 0 should clamp to 1, got %d", p.Size())
	}
}

func TestResourcePoolBusyTime(t *testing.T) {
	p := NewResourcePool(2)
	p.Acquire(0, 100)
	p.Acquire(0, 50)
	if bt := p.BusyTime(); bt != 150 {
		t.Fatalf("BusyTime = %d, want 150", bt)
	}
}
