package faultfab

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"hcl/internal/fabric"
	"hcl/internal/fabric/simfab"
	"hcl/internal/memory"
	"hcl/internal/metrics"
	"hcl/internal/seed"
	"hcl/internal/trace"
)

func newSim(t *testing.T, nodes int) *simfab.Fabric {
	t.Helper()
	f := simfab.New(nodes, fabric.DefaultCostModel())
	t.Cleanup(func() { f.Close() })
	return f
}

func newSimTraced(t *testing.T, nodes int, tr *trace.Tracer) *simfab.Fabric {
	t.Helper()
	f := simfab.New(nodes, fabric.DefaultCostModel(), simfab.WithTracer(tr))
	t.Cleanup(func() { f.Close() })
	return f
}

var ref0 = fabric.RankRef{Rank: 0, Node: 0}

// TestDeterministicScheduleFromSeed: the whole point of faultfab — the
// same seed and per-rank operation order replay the same faults, so a
// failing fault test reproduces on every run and under -race.
func TestDeterministicScheduleFromSeed(t *testing.T) {
	trace := func(seed int64) string {
		sim := newSim(t, 2)
		seg := memory.NewSegment(64)
		id := sim.RegisterSegment(1, seg)
		f := New(sim, Config{Seed: seed, DropProb: 0.5})
		v := f.WithOptions(fabric.Options{MaxAttempts: 1})
		clk := fabric.NewClock(0)
		out := ""
		for i := 0; i < 32; i++ {
			err := v.Write(clk, ref0, 1, id, 0, []byte("x"))
			out += fmt.Sprintf("%v@%d;", err != nil, clk.Now())
		}
		return out
	}
	a, b, c := trace(7), trace(7), trace(8)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if a == c {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

// TestPartitionTimesOutThenHeals: a cut link times out in virtual time —
// the caller's clock lands exactly on the deadline, no wall time passes —
// and the first verb after Heal succeeds.
func TestPartitionTimesOutThenHeals(t *testing.T) {
	sim := newSim(t, 2)
	seg := memory.NewSegment(64)
	id := sim.RegisterSegment(1, seg)
	col := metrics.New(1e9)
	// Enough attempts that the deadline, not the budget, ends the op.
	f := New(sim, Config{Seed: seed.FromEnv(t, 1), MaxAttempts: 100, Collector: col})
	f.Partition(0, 1)

	deadline := 10 * time.Millisecond
	v := f.WithOptions(fabric.Options{Deadline: deadline})
	clk := fabric.NewClock(0)
	wall := time.Now()
	err := v.Write(clk, ref0, 1, id, 0, []byte("lost"))
	if !errors.Is(err, fabric.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if clk.Now() != deadline.Nanoseconds() {
		t.Fatalf("clock = %d, want exactly the deadline %d", clk.Now(), deadline.Nanoseconds())
	}
	if w := time.Since(wall); w > 2*time.Second {
		t.Fatalf("virtual timeout took %v of wall time", w)
	}
	if col.Total(metrics.Timeouts, 1) != 1 {
		t.Fatalf("timeouts counter = %v, want 1", col.Total(metrics.Timeouts, 1))
	}

	f.Heal(0, 1)
	if err := v.Write(clk, ref0, 1, id, 0, []byte("ok")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	buf := make([]byte, 2)
	if err := v.Read(clk, ref0, 1, id, 0, buf); err != nil || string(buf) != "ok" {
		t.Fatalf("read back %q, %v", buf, err)
	}
}

// TestDownNodeFailsFast: a node marked down refuses immediately with
// ErrNodeDown — no attempt budget is burned waiting.
func TestDownNodeFailsFast(t *testing.T) {
	sim := newSim(t, 2)
	sim.SetDispatcher(1, func(req []byte) ([]byte, int64) { return req, 0 })
	f := New(sim, Config{Seed: seed.FromEnv(t, 1)})
	f.SetDown(1, true)

	clk := fabric.NewClock(0)
	_, err := f.RoundTrip(clk, ref0, 1, []byte("x"))
	if !errors.Is(err, fabric.ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
	if clk.Now() != 0 {
		t.Fatalf("clock advanced %dns on a refused verb", clk.Now())
	}

	f.SetDown(1, false)
	if _, err := f.RoundTrip(clk, ref0, 1, []byte("x")); err != nil {
		t.Fatalf("rpc after revive: %v", err)
	}
}

// TestDuplicateDeliveryExecutesTwice: with DupProb=1 every delivered RPC
// runs the handler twice; the caller still sees exactly one response.
// This is the at-least-once hazard the RetryRPC opt-in accepts.
func TestDuplicateDeliveryExecutesTwice(t *testing.T) {
	sim := newSim(t, 2)
	var calls atomic.Int64
	sim.SetDispatcher(1, func(req []byte) ([]byte, int64) {
		calls.Add(1)
		return append([]byte("r:"), req...), 0
	})
	f := New(sim, Config{Seed: seed.FromEnv(t, 1), DupProb: 1})

	resp, err := f.RoundTrip(fabric.NewClock(0), ref0, 1, []byte("q"))
	if err != nil || string(resp) != "r:q" {
		t.Fatalf("resp = %q, %v", resp, err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("handler ran %d times, want 2 (duplicate delivery)", n)
	}

	// A duplicated read must not clobber the caller's buffer after the
	// first delivery handed it back.
	seg := memory.NewSegment(64)
	id := sim.RegisterSegment(1, seg)
	if err := f.Write(fabric.NewClock(0), ref0, 1, id, 0, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if err := f.Read(fabric.NewClock(0), ref0, 1, id, 0, buf); err != nil || string(buf) != "keep" {
		t.Fatalf("read %q, %v", buf, err)
	}
}

// TestBackoffBurnsVirtualTimeOnly: every retry pause is a virtual-clock
// advance following the configured schedule, never a goroutine sleep.
func TestBackoffBurnsVirtualTimeOnly(t *testing.T) {
	sim := newSim(t, 2)
	seg := memory.NewSegment(64)
	id := sim.RegisterSegment(1, seg)
	const attemptNS = 1_000_000
	cfg := Config{
		Seed:             seed.FromEnv(t, 3),
		DropProb:         1, // every attempt is lost
		AttemptTimeoutNS: attemptNS,
		MaxAttempts:      3,
		Backoff:          fabric.Backoff{Base: 4 * time.Millisecond, Cap: 16 * time.Millisecond, Factor: 2},
	}
	run := func() int64 {
		f := New(sim, cfg)
		clk := fabric.NewClock(0)
		if err := f.Write(clk, ref0, 1, id, 0, []byte("x")); !errors.Is(err, fabric.ErrTimeout) {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
		return clk.Now()
	}
	wall := time.Now()
	got := run()
	// 3 lost attempts burn their timeouts; two backoff pauses (full
	// jitter, so anywhere in [0, ceiling)) separate them.
	min := int64(3 * attemptNS)
	max := min + (cfg.Backoff.Ceiling(0) + cfg.Backoff.Ceiling(1)).Nanoseconds()
	if got < min || got >= max {
		t.Fatalf("clock = %d, want in [%d, %d)", got, min, max)
	}
	if got2 := run(); got2 != got {
		t.Fatalf("same seed, different elapsed virtual time: %d vs %d", got, got2)
	}
	if w := time.Since(wall); w > 2*time.Second {
		t.Fatalf("backoff slept %v of wall time", w)
	}
}

// TestRPCRetryGatedBehindOptIn: a lost RPC may have executed before its
// response vanished, so it must not be replayed silently — one attempt,
// typed failure. The RetryRPC opt-in unlocks the full attempt budget.
func TestRPCRetryGatedBehindOptIn(t *testing.T) {
	sim := newSim(t, 2)
	sim.SetDispatcher(1, func(req []byte) ([]byte, int64) { return req, 0 })
	const attemptNS = 1_000_000
	col := metrics.New(1e9)
	f := New(sim, Config{Seed: seed.FromEnv(t, 5), DropProb: 1, AttemptTimeoutNS: attemptNS, MaxAttempts: 4, Collector: col})

	clk := fabric.NewClock(0)
	_, err := f.RoundTrip(clk, ref0, 1, []byte("x"))
	if !errors.Is(err, fabric.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if clk.Now() != attemptNS {
		t.Fatalf("clock = %d, want exactly one attempt timeout %d (no silent replay)", clk.Now(), attemptNS)
	}
	if col.Total(metrics.Retries, 1) != 0 {
		t.Fatalf("retries = %v without opt-in", col.Total(metrics.Retries, 1))
	}

	v := f.WithOptions(fabric.Options{RetryRPC: true})
	clk2 := fabric.NewClock(0)
	if _, err := v.RoundTrip(clk2, ref0, 1, []byte("x")); !errors.Is(err, fabric.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if clk2.Now() < 4*attemptNS {
		t.Fatalf("clock = %d, want >= %d (full attempt budget with opt-in)", clk2.Now(), 4*attemptNS)
	}
	if col.Total(metrics.Retries, 1) != 3 {
		t.Fatalf("retries = %v, want 3", col.Total(metrics.Retries, 1))
	}
}

// TestWritesRetryThroughDrops: idempotent writes ride out a 50% drop rate
// inside their attempt budget; the retries counter records the recoveries.
func TestWritesRetryThroughDrops(t *testing.T) {
	sim := newSim(t, 2)
	seg := memory.NewSegment(64)
	id := sim.RegisterSegment(1, seg)
	col := metrics.New(1e9)
	f := New(sim, Config{Seed: seed.FromEnv(t, 11), DropProb: 0.5, MaxAttempts: 16, Collector: col})

	clk := fabric.NewClock(0)
	for i := 0; i < 64; i++ {
		if err := f.Write(clk, ref0, 1, id, 0, []byte{byte(i)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	buf := make([]byte, 1)
	if err := f.Read(clk, ref0, 1, id, 0, buf); err != nil || buf[0] != 63 {
		t.Fatalf("read back %d, %v", buf[0], err)
	}
	if col.Total(metrics.Retries, 1) == 0 {
		t.Fatal("64 writes at 50% drop recorded zero retries")
	}
}

// TestSameNodeBypassesFaults: a rank talking to its own node never crosses
// the modelled wire, so even DropProb=1 cannot touch it — mirroring the
// hybrid access model's local path.
func TestSameNodeBypassesFaults(t *testing.T) {
	sim := newSim(t, 2)
	sim.SetDispatcher(0, func(req []byte) ([]byte, int64) { return req, 0 })
	f := New(sim, Config{Seed: seed.FromEnv(t, 1), DropProb: 1})
	if _, err := f.RoundTrip(fabric.NewClock(0), ref0, 0, []byte("local")); err != nil {
		t.Fatalf("local rpc hit a fault: %v", err)
	}
}

// TestCapabilitiesSurviveWrapping: cost model and memory accounting pass
// through the wrapper and its options view, so higher layers cannot tell
// they are running over a faulty wire.
func TestCapabilitiesSurviveWrapping(t *testing.T) {
	sim := newSim(t, 2)
	f := New(sim, Config{Seed: 1})
	if f.Name() != "fault+sim" {
		t.Fatalf("name = %q", f.Name())
	}
	if fabric.ModelOf(f).NICCores != sim.CostModel().NICCores {
		t.Fatal("Modeler capability lost")
	}
	if fabric.AccountantOf(f).NodeMemory() != sim.NodeMemory() {
		t.Fatal("Accountant capability lost")
	}
	v := f.WithOptions(fabric.Options{Deadline: time.Second})
	if fabric.ModelOf(v).NICCores != sim.CostModel().NICCores {
		t.Fatal("Modeler capability lost through the options view")
	}
	if f.WithOptions(fabric.Options{}) != fabric.Provider(f) {
		t.Fatal("zero options must be the identity")
	}
}
