package faultfab

import (
	"errors"
	"testing"

	"hcl/internal/fabric"
	"hcl/internal/metrics"
	"hcl/internal/trace"
)

// TestRetrySiblingsInSpanTree: a traced RPC through an always-dropping
// injector records one "attempt" span per try, numbered as siblings of
// the same parent, and the fabric_retries counter agrees with the span
// count — the acceptance shape for retry observability.
func TestRetrySiblingsInSpanTree(t *testing.T) {
	sim := newSim(t, 2)
	col := metrics.New(1e6)
	tr := trace.New(0)
	f := New(sim, Config{
		Seed:      1,
		DropProb:  1, // every attempt is lost
		Collector: col,
		Tracer:    tr,
	})
	v := f.WithOptions(fabric.Options{MaxAttempts: 3, RetryRPC: true})

	clk := fabric.NewClock(0)
	tc := trace.Ctx{TraceID: tr.NewID(), Parent: tr.NewID()}
	clk.SetTrace(tc)
	_, err := v.RoundTrip(clk, ref0, 1, []byte("req"))
	if !errors.Is(err, fabric.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}

	spans := tr.Spans(tc.TraceID)
	var attempts []trace.Span
	for _, s := range spans {
		if s.Name == "attempt" {
			attempts = append(attempts, s)
		}
	}
	if len(attempts) != 3 {
		t.Fatalf("attempt spans = %d, want 3: %+v", len(attempts), spans)
	}
	for i, s := range attempts {
		if s.Attempt != i {
			t.Fatalf("attempt %d numbered %d", i, s.Attempt)
		}
		if s.Parent != tc.Parent {
			t.Fatalf("attempt %d parent = %d, want sibling under %d", i, s.Parent, tc.Parent)
		}
		if s.Verb != "rpc" || s.Node != 1 {
			t.Fatalf("attempt span %+v", s)
		}
		if s.Duration() <= 0 {
			t.Fatalf("attempt %d has no duration: %+v", i, s)
		}
		if i > 0 && s.Start < attempts[i-1].End {
			t.Fatalf("attempt %d overlaps previous: %+v / %+v", i, attempts[i-1], s)
		}
	}

	// Counter consistency: retries = attempts - 1, one timeout overall.
	if got := col.Total(metrics.Retries, 1); got != float64(len(attempts)-1) {
		t.Fatalf("fabric_retries = %v, want %d", got, len(attempts)-1)
	}
	if got := col.Total(metrics.Timeouts, 1); got != 1 {
		t.Fatalf("timeouts = %v", got)
	}
}

// TestSuccessfulAttemptPropagatesCtx: the inner provider sees the
// restamped per-attempt context, so its own spans join the same tree
// with the right attempt number.
func TestSuccessfulAttemptPropagatesCtx(t *testing.T) {
	tr := trace.New(0)
	sim := newSimTraced(t, 2, tr)
	f := New(sim, Config{
		Seed:     1,
		DropProb: 0.6, // some attempts lost, eventually one lands
		Tracer:   tr,
	})
	v := f.WithOptions(fabric.Options{MaxAttempts: 10, RetryRPC: true})
	sim.SetDispatcher(1, func(req []byte) ([]byte, int64) { return req, 10 })

	clk := fabric.NewClock(0)
	tc := trace.Ctx{TraceID: tr.NewID(), Parent: tr.NewID()}
	clk.SetTrace(tc)
	if _, err := v.RoundTrip(clk, ref0, 1, []byte("req")); err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans(tc.TraceID)
	var last int // attempt number of the landed try
	for _, s := range spans {
		if s.Name == "attempt" && s.Attempt > last {
			last = s.Attempt
		}
	}
	var wires int
	for _, s := range spans {
		if s.Name == "wire" {
			wires++
			if s.Attempt != last {
				t.Fatalf("inner wire span attempt = %d, want %d: %+v", s.Attempt, last, s)
			}
		}
	}
	if wires != 1 {
		t.Fatalf("wire spans = %d (inner fabric not traced through): %+v", wires, spans)
	}
}
