// Package faultfab wraps any fabric.Provider with deterministic fault
// injection: dropped requests, delayed and duplicated deliveries, node
// partitions, and dead nodes. It exists so the robustness machinery of the
// fault-tolerant fabric layer — per-op deadlines, retry with capped
// backoff, typed ErrTimeout/ErrNodeDown errors — can be exercised on the
// simulated provider, where every "timeout" is a virtual-clock advance and
// every run replays identically from the seed. No real time passes and no
// goroutine sleeps, so fault tests are fast and race-detector friendly.
//
// Fault decisions are drawn from a counter-based hash of
// (seed, rank, target node, verb, per-rank sequence number), not from a
// shared RNG stream: each rank's fault schedule depends only on its own
// operation order, so concurrent ranks cannot perturb each other's faults
// and SPMD tests stay deterministic under arbitrary goroutine scheduling.
//
// Faults are injected only on cross-node verbs; a rank talking to its own
// node never traverses the wire being modelled.
package faultfab

import (
	"fmt"
	"math"
	"sync"

	"hcl/internal/fabric"
	"hcl/internal/metrics"
	"hcl/internal/trace"
)

// Verb classes for fault rolls and retry gating.
const (
	verbRPC byte = iota + 1
	verbWrite
	verbRead
	verbCAS
	verbFAA
)

// Config tunes the injected fault mix. Probabilities are per-attempt.
type Config struct {
	// Seed drives every fault decision. Two runs with the same seed and
	// per-rank operation order inject exactly the same faults.
	Seed int64
	// DropProb is the probability an attempt's request (or its
	// response) is lost in flight. The caller burns AttemptTimeoutNS of
	// virtual time discovering the loss, then retries if allowed.
	DropProb float64
	// DupProb is the probability a delivered request is delivered
	// twice (duplicate delivery after an ack loss). The duplicate's
	// result is discarded, so only handler side effects reveal it.
	DupProb float64
	// DelayProb is the probability a delivered attempt is slowed by
	// DelayNS of extra virtual latency.
	DelayProb float64
	// DelayNS is the injected extra latency (default 20µs virtual).
	DelayNS int64
	// AttemptTimeoutNS is the virtual time a caller waits on a lost
	// attempt before declaring it failed (default 1ms virtual).
	AttemptTimeoutNS int64
	// MaxAttempts caps tries per verb (default 4); per-op
	// fabric.Options.MaxAttempts overrides it.
	MaxAttempts int
	// Backoff schedules virtual-time pauses between retries (zero
	// value selects fabric.DefaultBackoff()).
	Backoff fabric.Backoff
	// Collector, when non-nil, receives Retries/Timeouts counters.
	Collector *metrics.Collector
	// Tracer, when non-nil, records one "attempt" span per try of a traced
	// verb — lost, delayed, and successful attempts all surface as sibling
	// spans under the caller's root, which is how a retry storm reads in a
	// trace tree. Timestamps are virtual, so the spans replay identically.
	Tracer *trace.Tracer
}

// Fabric is the fault-injecting provider. Create one with New.
type Fabric struct {
	inner fabric.Provider
	cfg   Config

	mu   sync.RWMutex
	down map[int]bool
	cut  map[[2]int]bool

	seqMu sync.Mutex
	seq   map[int]uint64 // per-rank operation counter
}

// New wraps inner with fault injection per cfg.
func New(inner fabric.Provider, cfg Config) *Fabric {
	if cfg.DelayNS <= 0 {
		cfg.DelayNS = 20_000
	}
	if cfg.AttemptTimeoutNS <= 0 {
		cfg.AttemptTimeoutNS = 1_000_000
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	return &Fabric{
		inner: inner,
		cfg:   cfg,
		down:  make(map[int]bool),
		cut:   make(map[[2]int]bool),
	}
}

// Inner returns the wrapped provider.
func (f *Fabric) Inner() fabric.Provider { return f.inner }

// Fault topology controls ----------------------------------------------

func cutKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Partition cuts the link between nodes a and b in both directions:
// verbs between them are dropped until Heal.
func (f *Fabric) Partition(a, b int) {
	f.mu.Lock()
	f.cut[cutKey(a, b)] = true
	f.mu.Unlock()
}

// Heal restores the link between nodes a and b.
func (f *Fabric) Heal(a, b int) {
	f.mu.Lock()
	delete(f.cut, cutKey(a, b))
	f.mu.Unlock()
}

// HealAll removes every partition.
func (f *Fabric) HealAll() {
	f.mu.Lock()
	f.cut = make(map[[2]int]bool)
	f.mu.Unlock()
}

// SetDown marks a node dead (verbs targeting it fail with ErrNodeDown
// immediately, like a refused connection) or revives it.
func (f *Fabric) SetDown(node int, down bool) {
	f.mu.Lock()
	if down {
		f.down[node] = true
	} else {
		delete(f.down, node)
	}
	f.mu.Unlock()
}

func (f *Fabric) isDown(node int) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.down[node]
}

func (f *Fabric) isCut(a, b int) bool {
	if a == b {
		return false
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.cut[cutKey(a, b)]
}

// Deterministic fault rolls --------------------------------------------

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rolls holds the fault decisions for one attempt.
type rolls struct {
	drop, dup, delay bool
	jitter           float64 // uniform [0,1) for backoff
}

func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// roll derives the attempt's fault decisions from the seed and the
// caller's own operation sequence.
func (f *Fabric) roll(from fabric.RankRef, node int, verb byte) rolls {
	f.seqMu.Lock()
	if f.seq == nil {
		f.seq = make(map[int]uint64)
	}
	f.seq[from.Rank]++
	n := f.seq[from.Rank]
	f.seqMu.Unlock()

	h := splitmix64(uint64(f.cfg.Seed) ^ uint64(from.Rank)<<32 ^ uint64(node)<<16 ^ uint64(verb)<<8 ^ n*0x2545f4914f6cdd1d)
	r := rolls{drop: unit(h) < f.cfg.DropProb}
	h = splitmix64(h)
	r.dup = unit(h) < f.cfg.DupProb
	h = splitmix64(h)
	r.delay = unit(h) < f.cfg.DelayProb
	h = splitmix64(h)
	r.jitter = unit(h)
	return r
}

// Verb execution --------------------------------------------------------

func (f *Fabric) count(kind metrics.Kind, node int, t int64) {
	if f.cfg.Collector != nil {
		f.cfg.Collector.Add(kind, node, t, 1)
	}
}

func verbString(verb byte) string {
	switch verb {
	case verbRPC:
		return "rpc"
	case verbWrite:
		return "write"
	case verbRead:
		return "read"
	case verbCAS:
		return "cas"
	case verbFAA:
		return "faa"
	}
	return "?"
}

// attemptSpan records one try of a traced verb as a sibling span under the
// caller's root.
func (f *Fabric) attemptSpan(tc trace.Ctx, verb byte, node, attempt int, start, end int64) {
	tr := f.cfg.Tracer
	if tr == nil || !tc.Valid() {
		return
	}
	tr.Record(trace.Span{
		TraceID: tc.TraceID, ID: tr.NewID(), Parent: tc.Parent,
		Name: "attempt", Verb: verbString(verb), Node: node,
		Attempt: attempt, Start: start, End: end,
	})
}

// retryAllowed mirrors tcpfab's policy: idempotent one-sided reads and
// writes always retry; RPC/CAS/FAA replay only with the explicit opt-in
// (a dropped attempt may have executed — only the response was lost).
func retryAllowed(verb byte, o fabric.Options) bool {
	switch verb {
	case verbRead, verbWrite:
		return true
	default:
		return o.RetryRPC
	}
}

// perform runs op under the fault plan: it resolves the attempt budget and
// virtual deadline, injects partitions/drops/delays/duplicates, replays
// the backoff schedule as virtual-clock advances, and converts exhaustion
// into the same typed errors the real transport surfaces.
//
// op receives the clock to charge and whether its result should be
// recorded (false for duplicate deliveries, whose results are discarded).
func (f *Fabric) perform(clk *fabric.Clock, from fabric.RankRef, node int, verb byte, o fabric.Options, op func(c *fabric.Clock, record bool) error) error {
	start := clk.Now()
	deadline := int64(math.MaxInt64)
	if o.Deadline > 0 {
		deadline = start + o.Deadline.Nanoseconds()
	}
	attempts := f.cfg.MaxAttempts
	if o.MaxAttempts > 0 {
		attempts = o.MaxAttempts
	}
	tc := clk.Trace()

	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			f.count(metrics.Retries, node, clk.Now())
		}
		if f.isDown(node) {
			return fmt.Errorf("faultfab: node %d marked down: %w", node, fabric.ErrNodeDown)
		}
		r := f.roll(from, node, verb)
		if attempt > 0 {
			// Backoff pauses are virtual and never carry the clock past
			// the deadline — a real caller would stop sleeping there.
			pause := f.cfg.Backoff.Delay(attempt-1, r.jitter).Nanoseconds()
			if clk.Now()+pause >= deadline {
				clk.AdvanceTo(deadline)
				break
			}
			clk.Advance(pause)
		}
		// The attempt span starts after the backoff pause: it covers the
		// try's wire activity (or the timeout burned discovering a loss),
		// not the time spent waiting to retry.
		aStart := clk.Now()
		if f.isCut(from.Node, node) || r.drop {
			// The attempt vanished; the caller burns its attempt
			// timeout (clipped to the deadline) discovering that.
			if clk.Now()+f.cfg.AttemptTimeoutNS >= deadline {
				clk.AdvanceTo(deadline)
				f.attemptSpan(tc, verb, node, attempt, aStart, clk.Now())
				break
			}
			clk.Advance(f.cfg.AttemptTimeoutNS)
			f.attemptSpan(tc, verb, node, attempt, aStart, clk.Now())
			if !retryAllowed(verb, o) {
				break
			}
			continue
		}
		if r.delay {
			if clk.Now()+f.cfg.DelayNS >= deadline {
				clk.AdvanceTo(deadline)
				f.attemptSpan(tc, verb, node, attempt, aStart, clk.Now())
				break
			}
			clk.Advance(f.cfg.DelayNS)
		}
		side := fabric.NewClock(clk.Now())
		// The inner provider sees the restamped context, so its own spans
		// (e.g. simfab's wire segments) carry this attempt's number.
		side.SetTrace(tc.WithAttempt(attempt))
		err := op(side, true)
		if r.dup {
			// Duplicate delivery: the verb executes again at the
			// target; the caller never sees the second result.
			_ = op(fabric.NewClock(clk.Now()), false)
		}
		if side.Now() > deadline {
			clk.AdvanceTo(deadline)
			f.attemptSpan(tc, verb, node, attempt, aStart, clk.Now())
			break
		}
		clk.AdvanceTo(side.Now())
		f.attemptSpan(tc, verb, node, attempt, aStart, clk.Now())
		return err
	}
	f.count(metrics.Timeouts, node, clk.Now())
	return fmt.Errorf("faultfab: node %d: %w", node, fabric.ErrTimeout)
}

// fabric.Provider --------------------------------------------------------

// Name implements fabric.Provider.
func (f *Fabric) Name() string { return "fault+" + f.inner.Name() }

// NumNodes implements fabric.Provider.
func (f *Fabric) NumNodes() int { return f.inner.NumNodes() }

// SetDispatcher implements fabric.Provider.
func (f *Fabric) SetDispatcher(node int, d fabric.Dispatcher) { f.inner.SetDispatcher(node, d) }

// RegisterSegment implements fabric.Provider.
func (f *Fabric) RegisterSegment(node int, seg fabric.Segment) int {
	return f.inner.RegisterSegment(node, seg)
}

// Close implements fabric.Provider.
func (f *Fabric) Close() error { return f.inner.Close() }

// RoundTrip implements fabric.Provider.
func (f *Fabric) RoundTrip(clk *fabric.Clock, from fabric.RankRef, node int, req []byte) ([]byte, error) {
	return f.roundTrip(clk, from, node, req, fabric.Options{})
}

func (f *Fabric) roundTrip(clk *fabric.Clock, from fabric.RankRef, node int, req []byte, o fabric.Options) ([]byte, error) {
	if node == from.Node {
		return f.inner.RoundTrip(clk, from, node, req)
	}
	var resp []byte
	err := f.perform(clk, from, node, verbRPC, o, func(c *fabric.Clock, record bool) error {
		r, err := f.inner.RoundTrip(c, from, node, req)
		if record {
			resp = r
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// Write implements fabric.Provider.
func (f *Fabric) Write(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, data []byte) error {
	return f.write(clk, from, node, seg, off, data, fabric.Options{})
}

func (f *Fabric) write(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, data []byte, o fabric.Options) error {
	if node == from.Node {
		return f.inner.Write(clk, from, node, seg, off, data)
	}
	return f.perform(clk, from, node, verbWrite, o, func(c *fabric.Clock, record bool) error {
		return f.inner.Write(c, from, node, seg, off, data)
	})
}

// Read implements fabric.Provider.
func (f *Fabric) Read(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, buf []byte) error {
	return f.read(clk, from, node, seg, off, buf, fabric.Options{})
}

func (f *Fabric) read(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, buf []byte, o fabric.Options) error {
	if node == from.Node {
		return f.inner.Read(clk, from, node, seg, off, buf)
	}
	return f.perform(clk, from, node, verbRead, o, func(c *fabric.Clock, record bool) error {
		if !record {
			// A duplicated read re-travels the wire but must not
			// clobber the caller's buffer after it was handed back.
			return f.inner.Read(c, from, node, seg, off, make([]byte, len(buf)))
		}
		return f.inner.Read(c, from, node, seg, off, buf)
	})
}

// CAS implements fabric.Provider.
func (f *Fabric) CAS(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, old, new uint64) (uint64, bool, error) {
	return f.cas(clk, from, node, seg, off, old, new, fabric.Options{})
}

func (f *Fabric) cas(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, old, new uint64, o fabric.Options) (uint64, bool, error) {
	if node == from.Node {
		return f.inner.CAS(clk, from, node, seg, off, old, new)
	}
	var witness uint64
	var ok bool
	err := f.perform(clk, from, node, verbCAS, o, func(c *fabric.Clock, record bool) error {
		w, k, err := f.inner.CAS(c, from, node, seg, off, old, new)
		if record {
			witness, ok = w, k
		}
		return err
	})
	if err != nil {
		return 0, false, err
	}
	return witness, ok, nil
}

// FetchAdd implements fabric.Provider.
func (f *Fabric) FetchAdd(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, delta uint64) (uint64, error) {
	return f.fetchAdd(clk, from, node, seg, off, delta, fabric.Options{})
}

func (f *Fabric) fetchAdd(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, delta uint64, o fabric.Options) (uint64, error) {
	if node == from.Node {
		return f.inner.FetchAdd(clk, from, node, seg, off, delta)
	}
	var prev uint64
	err := f.perform(clk, from, node, verbFAA, o, func(c *fabric.Clock, record bool) error {
		p, err := f.inner.FetchAdd(c, from, node, seg, off, delta)
		if record {
			prev = p
		}
		return err
	})
	if err != nil {
		return 0, err
	}
	return prev, nil
}

// Capability forwarding --------------------------------------------------

// CostModel forwards the Modeler capability of the wrapped provider.
func (f *Fabric) CostModel() fabric.CostModel { return fabric.ModelOf(f.inner) }

// LocalAccess forwards the Accountant capability of the wrapped provider.
func (f *Fabric) LocalAccess(clk *fabric.Clock, node, bytes, ops int) {
	fabric.AccountantOf(f.inner).LocalAccess(clk, node, bytes, ops)
}

// Alloc forwards the Accountant capability of the wrapped provider.
func (f *Fabric) Alloc(node int, n, now int64) error {
	return fabric.AccountantOf(f.inner).Alloc(node, n, now)
}

// Free forwards the Accountant capability of the wrapped provider.
func (f *Fabric) Free(node int, n, now int64) { fabric.AccountantOf(f.inner).Free(node, n, now) }

// Allocated forwards the Accountant capability of the wrapped provider.
func (f *Fabric) Allocated(node int) int64 { return fabric.AccountantOf(f.inner).Allocated(node) }

// NodeMemory forwards the Accountant capability of the wrapped provider.
func (f *Fabric) NodeMemory() int64 { return fabric.AccountantOf(f.inner).NodeMemory() }

// WithOptions implements fabric.Optioned.
func (f *Fabric) WithOptions(o fabric.Options) fabric.Provider {
	if o == (fabric.Options{}) {
		return f
	}
	return &optioned{f: f, o: o}
}

// optioned is the per-op-options view of a fault Fabric.
type optioned struct {
	f *Fabric
	o fabric.Options
}

var _ fabric.Provider = (*optioned)(nil)
var _ fabric.Optioned = (*optioned)(nil)

func (v *optioned) Name() string                                { return v.f.Name() }
func (v *optioned) NumNodes() int                               { return v.f.NumNodes() }
func (v *optioned) Close() error                                { return v.f.Close() }
func (v *optioned) SetDispatcher(n int, d fabric.Dispatcher)    { v.f.SetDispatcher(n, d) }
func (v *optioned) RegisterSegment(n int, s fabric.Segment) int { return v.f.RegisterSegment(n, s) }
func (v *optioned) CostModel() fabric.CostModel                 { return v.f.CostModel() }

func (v *optioned) LocalAccess(clk *fabric.Clock, node, bytes, ops int) {
	v.f.LocalAccess(clk, node, bytes, ops)
}
func (v *optioned) Alloc(node int, n, now int64) error { return v.f.Alloc(node, n, now) }
func (v *optioned) Free(node int, n, now int64)        { v.f.Free(node, n, now) }
func (v *optioned) Allocated(node int) int64           { return v.f.Allocated(node) }
func (v *optioned) NodeMemory() int64                  { return v.f.NodeMemory() }

func (v *optioned) WithOptions(o fabric.Options) fabric.Provider {
	return v.f.WithOptions(v.o.Merge(o))
}

func (v *optioned) RoundTrip(clk *fabric.Clock, from fabric.RankRef, node int, req []byte) ([]byte, error) {
	return v.f.roundTrip(clk, from, node, req, v.o)
}

func (v *optioned) Write(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, data []byte) error {
	return v.f.write(clk, from, node, seg, off, data, v.o)
}

func (v *optioned) Read(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, buf []byte) error {
	return v.f.read(clk, from, node, seg, off, buf, v.o)
}

func (v *optioned) CAS(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, old, new uint64) (uint64, bool, error) {
	return v.f.cas(clk, from, node, seg, off, old, new, v.o)
}

func (v *optioned) FetchAdd(clk *fabric.Clock, from fabric.RankRef, node, seg, off int, delta uint64) (uint64, error) {
	return v.f.fetchAdd(clk, from, node, seg, off, delta, v.o)
}

var _ fabric.Provider = (*Fabric)(nil)
var _ fabric.Optioned = (*Fabric)(nil)
var _ fabric.Accountant = (*Fabric)(nil)
var _ fabric.Modeler = (*Fabric)(nil)
