package ror

import (
	"strings"
	"testing"

	"hcl/internal/fabric"
	"hcl/internal/fabric/simfab"
)

type testCaller struct {
	ref fabric.RankRef
	clk *fabric.Clock
}

func (c *testCaller) Ref() fabric.RankRef  { return c.ref }
func (c *testCaller) Clock() *fabric.Clock { return c.clk }

func newTestEngine(nodes int) (*Engine, *simfab.Fabric) {
	f := simfab.New(nodes, fabric.DefaultCostModel())
	return NewEngine(f), f
}

func caller(node int) *testCaller {
	return &testCaller{ref: fabric.RankRef{Rank: 0, Node: node}, clk: fabric.NewClock(0)}
}

func TestBindInvoke(t *testing.T) {
	e, f := newTestEngine(2)
	defer f.Close()
	e.Bind("upper", func(node int, arg []byte) ([]byte, int64) {
		return []byte(strings.ToUpper(string(arg))), 10
	})
	if !e.Bound("upper") {
		t.Fatal("Bound")
	}
	c := caller(0)
	resp, err := e.Invoke(c, 1, "upper", []byte("hcl"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "HCL" {
		t.Fatalf("resp = %q", resp)
	}
	if c.clk.Now() <= 0 {
		t.Fatal("invoke must cost virtual time")
	}
}

func TestInvokeUnbound(t *testing.T) {
	e, f := newTestEngine(1)
	defer f.Close()
	if _, err := e.Invoke(caller(0), 0, "nope", nil); err == nil || !strings.Contains(err.Error(), "not bound") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnbind(t *testing.T) {
	e, f := newTestEngine(1)
	defer f.Close()
	e.Bind("f", func(int, []byte) ([]byte, int64) { return nil, 0 })
	e.Unbind("f")
	if e.Bound("f") {
		t.Fatal("still bound after Unbind")
	}
}

func TestHandlerSeesNodeID(t *testing.T) {
	e, f := newTestEngine(3)
	defer f.Close()
	e.Bind("whoami", func(node int, arg []byte) ([]byte, int64) {
		return []byte{byte(node)}, 0
	})
	for n := 0; n < 3; n++ {
		resp, err := e.Invoke(caller(0), n, "whoami", nil)
		if err != nil {
			t.Fatal(err)
		}
		if int(resp[0]) != n {
			t.Fatalf("node %d handler saw %d", n, resp[0])
		}
	}
}

func TestHandlerPanicBecomesError(t *testing.T) {
	e, f := newTestEngine(1)
	defer f.Close()
	e.Bind("boom", func(int, []byte) ([]byte, int64) { panic("kaput") })
	if _, err := e.Invoke(caller(0), 0, "boom", nil); err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Fatalf("err = %v", err)
	}
}

func TestInvokeChain(t *testing.T) {
	e, f := newTestEngine(1)
	defer f.Close()
	e.Bind("add1", func(_ int, arg []byte) ([]byte, int64) {
		return []byte{arg[0] + 1}, 5
	})
	e.Bind("double", func(_ int, arg []byte) ([]byte, int64) {
		return []byte{arg[0] * 2}, 5
	})
	// (3+1)*2 = 8, then +1 = 9: three ops, one round trip.
	resp, err := e.InvokeChain(caller(0), 0, []string{"add1", "double", "add1"}, []byte{3})
	if err != nil {
		t.Fatal(err)
	}
	if resp[0] != 9 {
		t.Fatalf("chain result = %d, want 9", resp[0])
	}
}

func TestInvokeChainEmpty(t *testing.T) {
	e, f := newTestEngine(1)
	defer f.Close()
	if _, err := e.InvokeChain(caller(0), 0, nil, nil); err == nil {
		t.Fatal("empty chain must error")
	}
}

func TestChainCostsOneRoundTripNotN(t *testing.T) {
	e, f := newTestEngine(2)
	defer f.Close()
	e.Bind("nop", func(int, []byte) ([]byte, int64) { return nil, 0 })

	single := caller(0)
	if _, err := e.Invoke(single, 1, "nop", nil); err != nil {
		t.Fatal(err)
	}
	chained := caller(0)
	if _, err := e.InvokeChain(chained, 1, []string{"nop", "nop", "nop"}, nil); err != nil {
		t.Fatal(err)
	}
	// Three chained calls must cost well under three separate invokes.
	if chained.clk.Now() >= 2*single.clk.Now() {
		t.Fatalf("chain of 3 = %d, single = %d: aggregation saved nothing", chained.clk.Now(), single.clk.Now())
	}
}

func TestInvokeAsyncOverlaps(t *testing.T) {
	// Separate fabrics per strategy: virtual resources retain reservation
	// state, so sharing one fabric would bill the async phase for the
	// sync phase's traffic.
	eSync, fSync := newTestEngine(2)
	defer fSync.Close()
	eSync.Bind("nop", func(int, []byte) ([]byte, int64) { return nil, 1000 })
	sync := caller(0)
	for i := 0; i < 4; i++ {
		if _, err := eSync.Invoke(sync, 1, "nop", nil); err != nil {
			t.Fatal(err)
		}
	}

	eAsync, fAsync := newTestEngine(2)
	defer fAsync.Close()
	eAsync.Bind("nop", func(int, []byte) ([]byte, int64) { return nil, 1000 })
	async := caller(0)
	futs := make([]*Future, 4)
	for i := range futs {
		futs[i] = eAsync.InvokeAsync(async, 1, "nop", nil)
	}
	for _, fu := range futs {
		if _, err := fu.Wait(async); err != nil {
			t.Fatal(err)
		}
	}
	if async.clk.Now() >= sync.clk.Now() {
		t.Fatalf("async pipeline (%d) should beat sequential sync (%d)", async.clk.Now(), sync.clk.Now())
	}
}

func TestFutureDoneAndReadyAt(t *testing.T) {
	e, f := newTestEngine(1)
	defer f.Close()
	e.Bind("nop", func(int, []byte) ([]byte, int64) { return []byte("ok"), 0 })
	c := caller(0)
	fu := e.InvokeAsync(c, 0, "nop", nil)
	resp, err := fu.Wait(c)
	if err != nil || string(resp) != "ok" {
		t.Fatalf("Wait = %q, %v", resp, err)
	}
	if !fu.Done() {
		t.Fatal("Done after Wait")
	}
	if fu.ReadyAt() <= 0 {
		t.Fatalf("ReadyAt = %d", fu.ReadyAt())
	}
	if c.clk.Now() < fu.ReadyAt() {
		t.Fatal("Wait must advance waiter clock to completion")
	}
}

func TestAsyncErrorPropagates(t *testing.T) {
	e, f := newTestEngine(1)
	defer f.Close()
	fu := e.InvokeAsync(caller(0), 0, "missing", nil)
	if _, err := fu.Wait(caller(0)); err == nil {
		t.Fatal("expected unbound error via future")
	}
}

func TestBatchFlush(t *testing.T) {
	e, f := newTestEngine(2)
	defer f.Close()
	e.Bind("inc", func(_ int, arg []byte) ([]byte, int64) {
		return []byte{arg[0] + 1}, 5
	})
	b := e.NewBatch(1)
	for i := byte(0); i < 10; i++ {
		b.Add("inc", []byte{i})
	}
	if b.Len() != 10 {
		t.Fatalf("Len = %d", b.Len())
	}
	resps, err := b.Flush(caller(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 10 {
		t.Fatalf("%d responses", len(resps))
	}
	for i, r := range resps {
		if r[0] != byte(i)+1 {
			t.Fatalf("resp[%d] = %d", i, r[0])
		}
	}
	if b.Len() != 0 {
		t.Fatal("batch not reset after flush")
	}
}

func TestBatchEmptyFlush(t *testing.T) {
	e, f := newTestEngine(1)
	defer f.Close()
	resps, err := e.NewBatch(0).Flush(caller(0))
	if err != nil || resps != nil {
		t.Fatalf("empty flush = %v, %v", resps, err)
	}
}

func TestBatchCheaperThanSeparateCalls(t *testing.T) {
	// Fresh fabric per strategy to avoid reservation carry-over.
	eSep, fSep := newTestEngine(2)
	defer fSep.Close()
	eSep.Bind("nop", func(int, []byte) ([]byte, int64) { return nil, 100 })
	sep := caller(0)
	for i := 0; i < 16; i++ {
		if _, err := eSep.Invoke(sep, 1, "nop", nil); err != nil {
			t.Fatal(err)
		}
	}

	eAgg, fAgg := newTestEngine(2)
	defer fAgg.Close()
	eAgg.Bind("nop", func(int, []byte) ([]byte, int64) { return nil, 100 })
	agg := caller(0)
	b := eAgg.NewBatch(1)
	for i := 0; i < 16; i++ {
		b.Add("nop", nil)
	}
	if _, err := b.Flush(agg); err != nil {
		t.Fatal(err)
	}
	if agg.clk.Now() >= sep.clk.Now() {
		t.Fatalf("batch (%d) should beat 16 separate invokes (%d)", agg.clk.Now(), sep.clk.Now())
	}
}

func TestBatchFlushAsync(t *testing.T) {
	e, f := newTestEngine(1)
	defer f.Close()
	e.Bind("id", func(_ int, arg []byte) ([]byte, int64) { return arg, 0 })
	c := caller(0)
	b := e.NewBatch(0)
	b.Add("id", []byte("a"))
	b.Add("id", []byte("b"))
	bf := b.FlushAsync(c)
	resps, err := bf.Wait(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 2 || string(resps[0]) != "a" || string(resps[1]) != "b" {
		t.Fatalf("resps = %q", resps)
	}
	// Empty async flush.
	if resps, err := e.NewBatch(0).FlushAsync(c).Wait(c); err != nil || resps != nil {
		t.Fatalf("empty async flush = %v, %v", resps, err)
	}
}

func TestBatchErrorOnUnbound(t *testing.T) {
	e, f := newTestEngine(1)
	defer f.Close()
	b := e.NewBatch(0)
	b.Add("missing", nil)
	if _, err := b.Flush(caller(0)); err == nil {
		t.Fatal("expected error")
	}
}

func TestWireCorruptionHandled(t *testing.T) {
	e, f := newTestEngine(1)
	defer f.Close()
	// Drive the dispatcher directly with garbage frames.
	c := caller(0)
	for _, raw := range [][]byte{nil, {}, {9, 9}, {0}, {1, 1, 0, 0}} {
		if _, err := f.RoundTrip(c.clk, c.ref, 0, raw); err != nil {
			// transport error is fine
			continue
		}
	}
	// Engine must still work afterwards.
	e.Bind("ok", func(int, []byte) ([]byte, int64) { return []byte("y"), 0 })
	resp, err := e.Invoke(c, 0, "ok", nil)
	if err != nil || string(resp) != "y" {
		t.Fatalf("engine wedged after garbage: %q %v", resp, err)
	}
}
