// Package ror implements the paper's RPC-over-RDMA (RoR) framework
// (Section III-B, Figure 2): a bind/invoke function registry whose calls
// travel as RDMA_SEND into a request buffer, execute on the target's NIC
// cores (never the target CPU), and whose responses are pulled back by the
// client with RDMA_READ. On top of the raw exchange it provides
// synchronous calls, asynchronous futures, callback chaining, and request
// aggregation — the four invocation styles the paper describes.
//
// In dataplane terms (docs/DATAPLANE.md) this package is the RPC model:
// one invocation executed at the owning node per operation. The adaptive
// router in internal/dataplane sends every mutation, every compound
// operation, and reads on hot or mutation-heavy partitions through this
// path; uncontended small-value reads may instead take the one-sided
// mirror path. The engine also hosts the dataplane's client-side cache
// check: a ReadThrough installed for a function answers an aggregated
// invocation from an unexpired read lease before it joins a batch bucket.
package ror

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hcl/internal/fabric"
	"hcl/internal/metrics"
	"hcl/internal/trace"
)

// Handler executes a bound function at a node. It returns the serialized
// response and the modelled execution cost in virtual nanoseconds (the
// NIC-core time the operation needs beyond the fixed stub overhead).
type Handler func(node int, arg []byte) (resp []byte, cost int64)

// Caller is anything that can originate an invocation: a cluster.Rank.
type Caller interface {
	Ref() fabric.RankRef
	Clock() *fabric.Clock
}

// OptionsCarrier is an optional Caller capability: a caller carrying
// per-operation fabric options (deadline, retry budget). cluster.Rank
// implements it, so rank.WithDeadline(d) bounds every container operation
// issued through the derived rank — at any layer, with no extra plumbing.
type OptionsCarrier interface {
	OpOptions() fabric.Options
}

// Errors returned by the engine.
var (
	ErrUnbound = errors.New("ror: function not bound")
)

// Engine is the RoR runtime for one provider. Bind registers functions;
// Invoke ships them. An Engine is safe for concurrent use.
type Engine struct {
	prov fabric.Provider

	collector atomic.Pointer[metrics.Collector]
	tracer    atomic.Pointer[trace.Tracer]

	optMu sync.RWMutex
	opts  fabric.Options

	mu  sync.RWMutex
	fns map[string]Handler

	rtMu        sync.RWMutex
	readThrough map[string]ReadThrough
}

// ReadThrough is a client-side shortcut consulted before an invocation is
// queued for aggregation: given the call's argument it may produce the
// response locally (a dataplane lease-cache hit) and report true, sparing
// the round trip entirely. The produced bytes must have the exact shape
// the bound handler would return. Installed per function name by the
// dataplane-enabled containers; see docs/DATAPLANE.md.
type ReadThrough func(arg []byte) ([]byte, bool)

// SetReadThrough installs (or, with nil, removes) the read-through
// shortcut for fn.
func (e *Engine) SetReadThrough(fn string, h ReadThrough) {
	e.rtMu.Lock()
	if e.readThrough == nil {
		e.readThrough = make(map[string]ReadThrough)
	}
	if h == nil {
		delete(e.readThrough, fn)
	} else {
		e.readThrough[fn] = h
	}
	e.rtMu.Unlock()
}

// readThroughFor reports fn's installed shortcut, or nil.
func (e *Engine) readThroughFor(fn string) ReadThrough {
	e.rtMu.RLock()
	h := e.readThrough[fn]
	e.rtMu.RUnlock()
	return h
}

// immediateFuture returns an already-completed future (read-through hits).
func immediateFuture(resp []byte, readyAt int64) *Future {
	f := &Future{done: make(chan struct{}), resp: resp, readyAt: readyAt}
	close(f.done)
	return f
}

// NewEngine creates an engine and installs its dispatcher on every node of
// the provider.
func NewEngine(prov fabric.Provider) *Engine {
	e := &Engine{prov: prov, fns: make(map[string]Handler)}
	for n := 0; n < prov.NumNodes(); n++ {
		node := n
		prov.SetDispatcher(node, func(req []byte) ([]byte, int64) {
			return e.dispatch(node, req)
		})
	}
	return e
}

// Provider returns the engine's fabric provider.
func (e *Engine) Provider() fabric.Provider { return e.prov }

// SetCollector installs the metrics collector that invocation-layer series
// (ror_ops_aggregated, ror_agg_flushes) are recorded into, bucketed by the
// calling rank's virtual clock.
func (e *Engine) SetCollector(c *metrics.Collector) { e.collector.Store(c) }

// Collector reports the installed collector (nil when none).
func (e *Engine) Collector() *metrics.Collector { return e.collector.Load() }

// SetTracer installs the span tracer. Every invocation then opens a root
// span, stamps the trace context onto the caller's clock (which carries
// it into the fabric and, on wire transports, across it), and records a
// container-execution span per handler on the serving side. A nil tracer
// disables tracing; the disabled path adds no allocations.
func (e *Engine) SetTracer(t *trace.Tracer) { e.tracer.Store(t) }

// Tracer reports the installed tracer (nil when none).
func (e *Engine) Tracer() *trace.Tracer { return e.tracer.Load() }

// count records one sample at the caller's current virtual time.
func (e *Engine) count(kind metrics.Kind, node int, c Caller, v float64) {
	if col := e.collector.Load(); col != nil {
		col.Add(kind, node, c.Clock().Now(), v)
	}
}

// SetDefaultOptions installs engine-wide per-operation fabric options
// (deadline, attempt budget, RPC-retry opt-in) applied to every
// invocation. A caller implementing OptionsCarrier overrides them per op.
func (e *Engine) SetDefaultOptions(o fabric.Options) {
	e.optMu.Lock()
	e.opts = o
	e.optMu.Unlock()
}

// DefaultOptions reports the engine-wide options.
func (e *Engine) DefaultOptions() fabric.Options {
	e.optMu.RLock()
	defer e.optMu.RUnlock()
	return e.opts
}

// providerFor resolves the provider view an invocation by c should travel
// on: the engine defaults overlaid with the caller's own options.
func (e *Engine) providerFor(c Caller) fabric.Provider {
	o := e.DefaultOptions()
	if oc, ok := c.(OptionsCarrier); ok {
		o = o.Merge(oc.OpOptions())
	}
	return fabric.WithOptions(e.prov, o)
}

// Bind maps name to handler in the invocation registry (the paper's
// bind()). Rebinding a name replaces the handler.
func (e *Engine) Bind(name string, h Handler) {
	e.mu.Lock()
	e.fns[name] = h
	e.mu.Unlock()
}

// Unbind removes a bound function.
func (e *Engine) Unbind(name string) {
	e.mu.Lock()
	delete(e.fns, name)
	e.mu.Unlock()
}

// Bound reports whether name is currently bound.
func (e *Engine) Bound(name string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, ok := e.fns[name]
	return ok
}

func (e *Engine) lookup(name string) (Handler, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	h, ok := e.fns[name]
	return h, ok
}

// dispatch is the server stub: it demarshals the request, runs the main
// function and any chained callbacks, and marshals the response.
func (e *Engine) dispatch(node int, req []byte) (resp []byte, cost int64) {
	defer func() {
		if p := recover(); p != nil {
			resp = encodeResponse(nil, fmt.Errorf("ror: handler panic: %v", p))
		}
	}()
	call, err := decodeRequest(req)
	if err != nil {
		return encodeResponse(nil, err), 0
	}
	switch call.kind {
	case kindCall:
		return e.runChain(node, call)
	case kindBatch:
		return e.runBatch(node, call)
	default:
		return encodeResponse(nil, fmt.Errorf("ror: unknown request kind %d", call.kind)), 0
	}
}

// runHandler executes one bound function, observing its wall execution
// time into the exec.<fn> histogram and, for traced requests, recording a
// container.exec span under the operation's root.
func (e *Engine) runHandler(node int, fn string, arg []byte, h Handler, tc trace.Ctx) ([]byte, int64) {
	col := e.collector.Load()
	tr := e.tracer.Load()
	traced := tr != nil && tc.Valid()
	if col == nil && !traced {
		return h(node, arg)
	}
	t0 := trace.NowNS()
	resp, cost := h(node, arg)
	t1 := trace.NowNS()
	if col != nil {
		col.Observe("exec."+fn, t1-t0)
	}
	if traced {
		tr.Record(trace.Span{
			TraceID: tc.TraceID, ID: tr.NewID(), Parent: tc.Parent,
			Name: "container.exec", Verb: fn, Node: node,
			Attempt: int(tc.Attempt), Start: t0, End: t1,
		})
	}
	return resp, cost
}

// runChain executes the main function followed by each chained callback,
// feeding every callback the previous stage's response (the paper's
// "conditional execution of multiple operations in one call").
func (e *Engine) runChain(node int, call request) ([]byte, int64) {
	arg := call.arg
	var total int64
	for i, name := range call.chain {
		h, ok := e.lookup(name)
		if !ok {
			return encodeResponse(nil, fmt.Errorf("%w: %q", ErrUnbound, name)), total
		}
		resp, cost := e.runHandler(node, name, arg, h, call.tc)
		total += cost
		if i == len(call.chain)-1 {
			return encodeResponse(resp, nil), total
		}
		arg = resp
	}
	return encodeResponse(nil, errors.New("ror: empty call chain")), 0
}

// runBatch executes an aggregated request: every sub-call runs back to
// back on the NIC core, and the sub-responses travel back together.
func (e *Engine) runBatch(node int, call request) ([]byte, int64) {
	var total int64
	resps := make([][]byte, len(call.batch))
	for i, sub := range call.batch {
		h, ok := e.lookup(sub.fn)
		if !ok {
			return encodeResponse(nil, fmt.Errorf("%w: %q", ErrUnbound, sub.fn)), total
		}
		resp, cost := e.runHandler(node, sub.fn, sub.arg, h, call.tc)
		total += cost
		resps[i] = resp
	}
	return encodeResponse(encodeBatchResponses(resps), nil), total
}

// Invoke synchronously calls fn at node with arg: the caller blocks until
// the pulled response is available (paper Section III-C4, synchronous
// timing of the future).
func (e *Engine) Invoke(c Caller, node int, fn string, arg []byte) ([]byte, error) {
	return e.InvokeChain(c, node, []string{fn}, arg)
}

// InvokeChain calls the first function with arg, then each subsequent
// function with its predecessor's response, all within one round trip.
func (e *Engine) InvokeChain(c Caller, node int, chain []string, arg []byte) ([]byte, error) {
	if len(chain) == 0 {
		return nil, errors.New("ror: empty chain")
	}
	clk := c.Clock()
	col := e.collector.Load()
	tr := e.tracer.Load()
	var tc trace.Ctx
	var rootID uint64
	start := clk.Now()
	if tr != nil {
		tc, rootID = tr.StartTrace()
		clk.SetTrace(tc)
	}
	req := encodeCallBuf(chain, arg, tc)
	raw, err := e.providerFor(c).RoundTrip(clk, c.Ref(), node, req.b)
	if tr != nil {
		clk.SetTrace(trace.Ctx{})
		tr.FinishRoot(trace.Span{
			TraceID: tc.TraceID, ID: rootID, Name: "rpc", Verb: chain[0],
			Node: node, Start: start, End: clk.Now(),
		})
	}
	if col != nil {
		col.Observe("rpc."+chain[0], clk.Now()-start)
	}
	if err != nil {
		// The transport may still hold the request (e.g. queued behind a
		// timed-out send); leak it to the GC rather than risk reuse.
		return nil, err
	}
	req.release()
	return decodeResponse(raw)
}

// Future is the pending result of an asynchronous invocation. Wait blocks
// until completion and advances the waiter's clock to the virtual time at
// which the response pull finished — so overlapping computation between
// InvokeAsync and Wait is modelled faithfully.
type Future struct {
	done    chan struct{}
	resp    []byte
	err     error
	readyAt int64
}

// Done reports whether the future has completed without blocking.
func (f *Future) Done() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Wait blocks for the result and syncs the caller's clock.
func (f *Future) Wait(c Caller) ([]byte, error) {
	<-f.done
	c.Clock().AdvanceTo(f.readyAt)
	return f.resp, f.err
}

// ReadyAt reports the virtual completion time (valid after Wait/Done).
func (f *Future) ReadyAt() int64 { return f.readyAt }

// InvokeAsync starts an invocation and immediately returns a Future. The
// caller is charged only the send-post cost; the round trip proceeds on a
// detached clock that starts at the caller's current time.
func (e *Engine) InvokeAsync(c Caller, node int, fn string, arg []byte) *Future {
	return e.InvokeChainAsync(c, node, []string{fn}, arg)
}

// InvokeChainAsync is the asynchronous form of InvokeChain. Transport
// failures — including typed deadline errors from the provider — surface
// from the future's Wait, never as a hang.
func (e *Engine) InvokeChainAsync(c Caller, node int, chain []string, arg []byte) *Future {
	f := &Future{done: make(chan struct{})}
	side := fabric.NewClock(c.Clock().Now())
	ref := c.Ref()
	col := e.collector.Load()
	tr := e.tracer.Load()
	var tc trace.Ctx
	var rootID uint64
	if tr != nil {
		tc, rootID = tr.StartTrace()
		side.SetTrace(tc)
	}
	req := encodeCallBuf(chain, arg, tc)
	prov := e.providerFor(c)
	start := side.Now()
	go func() {
		defer close(f.done)
		raw, err := prov.RoundTrip(side, ref, node, req.b)
		if err != nil {
			f.err = err
		} else {
			req.release()
			f.resp, f.err = decodeResponse(raw)
		}
		f.readyAt = side.Now()
		if tr != nil {
			tr.FinishRoot(trace.Span{
				TraceID: tc.TraceID, ID: rootID, Name: "rpc.async", Verb: chain[0],
				Node: node, Start: start, End: side.Now(),
			})
		}
		if col != nil {
			col.Observe("rpc."+chain[0], side.Now()-start)
		}
	}()
	return f
}
