package ror

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"hcl/internal/metrics"
)

// TestAggregatorFlushOnMaxOps checks the op-count threshold: the bucket
// ships exactly when it fills, and every future gets its own sub-response.
func TestAggregatorFlushOnMaxOps(t *testing.T) {
	e, f := newTestEngine(2)
	defer f.Close()
	e.Bind("echo", func(node int, arg []byte) ([]byte, int64) { return arg, 1 })
	c := caller(0)
	a := e.NewAggregator(c, AggregatorConfig{MaxOps: 3, MaxBytes: 1 << 20, Window: 1 << 40})

	var futs []*Future
	for i := 0; i < 3; i++ {
		futs = append(futs, a.Invoke(1, "echo", []byte(fmt.Sprintf("op%d", i))))
		if i < 2 && a.Pending(1) != i+1 {
			t.Fatalf("pending = %d after op %d", a.Pending(1), i)
		}
	}
	// Third invoke tripped MaxOps: the bucket is gone without any Flush.
	if a.Pending(1) != 0 {
		t.Fatalf("pending = %d after threshold", a.Pending(1))
	}
	for i, fu := range futs {
		resp, err := fu.Wait(c)
		if err != nil || string(resp) != fmt.Sprintf("op%d", i) {
			t.Fatalf("fut %d: %q %v", i, resp, err)
		}
	}
}

// TestAggregatorFlushOnMaxBytes checks the byte threshold, including the
// degenerate case of a single argument that alone reaches it.
func TestAggregatorFlushOnMaxBytes(t *testing.T) {
	e, f := newTestEngine(2)
	defer f.Close()
	e.Bind("len", func(node int, arg []byte) ([]byte, int64) {
		return []byte(fmt.Sprint(len(arg))), 1
	})
	c := caller(0)
	a := e.NewAggregator(c, AggregatorConfig{MaxOps: 1 << 20, MaxBytes: 64, Window: 1 << 40})

	// One oversized argument ships immediately.
	fu := a.Invoke(1, "len", make([]byte, 200))
	if a.Pending(1) != 0 {
		t.Fatalf("oversized arg parked: pending = %d", a.Pending(1))
	}
	if resp, err := fu.Wait(c); err != nil || string(resp) != "200" {
		t.Fatalf("oversized: %q %v", resp, err)
	}

	// Small arguments accumulate until the byte budget trips.
	var futs []*Future
	for i := 0; i < 4; i++ { // 4 * 20 = 80 >= 64 trips on the 4th
		futs = append(futs, a.Invoke(1, "len", make([]byte, 20)))
	}
	if a.Pending(1) != 0 {
		t.Fatalf("byte threshold never tripped: pending = %d", a.Pending(1))
	}
	for i, fu := range futs {
		if resp, err := fu.Wait(c); err != nil || string(resp) != "20" {
			t.Fatalf("fut %d: %q %v", i, resp, err)
		}
	}
}

// TestAggregatorWindowFlush checks the virtual-time window: a parked op
// ships when the rank's clock moves past Window before the next Invoke.
func TestAggregatorWindowFlush(t *testing.T) {
	e, f := newTestEngine(2)
	defer f.Close()
	e.Bind("echo", func(node int, arg []byte) ([]byte, int64) { return arg, 1 })
	c := caller(0)
	a := e.NewAggregator(c, AggregatorConfig{MaxOps: 100, MaxBytes: 1 << 20, Window: 1000})

	f1 := a.Invoke(1, "echo", []byte("first"))
	if a.Pending(1) != 1 {
		t.Fatalf("pending = %d", a.Pending(1))
	}
	c.clk.Advance(5000) // the rank does 5µs of work
	f2 := a.Invoke(1, "echo", []byte("second"))
	// The aged bucket shipped before "second" was admitted.
	if a.Pending(1) != 1 {
		t.Fatalf("window flush missing: pending = %d", a.Pending(1))
	}
	if resp, err := f1.Wait(c); err != nil || string(resp) != "first" {
		t.Fatalf("f1: %q %v", resp, err)
	}
	a.FlushAll()
	if resp, err := f2.Wait(c); err != nil || string(resp) != "second" {
		t.Fatalf("f2: %q %v", resp, err)
	}
}

// TestAggregatorErrorFanout: a failed batch fails every rider.
func TestAggregatorErrorFanout(t *testing.T) {
	e, f := newTestEngine(2)
	defer f.Close()
	c := caller(0)
	a := e.NewAggregator(c, AggregatorConfig{})
	f1 := a.Invoke(1, "unbound", []byte("x"))
	f2 := a.Invoke(1, "unbound", []byte("y"))
	a.Flush(1)
	for i, fu := range []*Future{f1, f2} {
		if _, err := fu.Wait(c); err == nil || !strings.Contains(err.Error(), "not bound") {
			t.Fatalf("fut %d: err = %v", i, err)
		}
	}
}

// TestAggregatorArgNotRetained: like Batch.Add, Invoke must copy its
// argument so callers can reuse scratch buffers.
func TestAggregatorArgNotRetained(t *testing.T) {
	e, f := newTestEngine(2)
	defer f.Close()
	e.Bind("echo", func(node int, arg []byte) ([]byte, int64) { return arg, 1 })
	c := caller(0)
	a := e.NewAggregator(c, AggregatorConfig{})
	scratch := []byte("before")
	fu := a.Invoke(1, "echo", scratch)
	copy(scratch, "XXXXXX") // caller reuses its buffer immediately
	a.Flush(1)
	if resp, err := fu.Wait(c); err != nil || string(resp) != "before" {
		t.Fatalf("aggregator retained caller buffer: %q %v", resp, err)
	}
}

// TestAggregatorMultiNode: buckets are per destination; traffic to one
// node never flushes another's bucket.
func TestAggregatorMultiNode(t *testing.T) {
	e, f := newTestEngine(3)
	defer f.Close()
	e.Bind("node", func(node int, arg []byte) ([]byte, int64) {
		return []byte(fmt.Sprint(node)), 1
	})
	c := caller(0)
	a := e.NewAggregator(c, AggregatorConfig{MaxOps: 2, MaxBytes: 1 << 20, Window: 1 << 40})
	f1 := a.Invoke(1, "node", nil)
	f2 := a.Invoke(2, "node", nil)
	if a.Pending(1) != 1 || a.Pending(2) != 1 {
		t.Fatalf("pending = %d,%d", a.Pending(1), a.Pending(2))
	}
	f1b := a.Invoke(1, "node", nil) // trips node 1's MaxOps only
	if a.Pending(1) != 0 || a.Pending(2) != 1 {
		t.Fatalf("after trip: pending = %d,%d", a.Pending(1), a.Pending(2))
	}
	a.FlushAll()
	for _, tc := range []struct {
		fu   *Future
		want string
	}{{f1, "1"}, {f1b, "1"}, {f2, "2"}} {
		if resp, err := tc.fu.Wait(c); err != nil || string(resp) != tc.want {
			t.Fatalf("resp = %q %v, want %q", resp, err, tc.want)
		}
	}
}

// TestAggregatorMetrics: ror_ops_aggregated counts riders and
// ror_agg_flushes counts shipments, through the engine's collector.
func TestAggregatorMetrics(t *testing.T) {
	e, f := newTestEngine(2)
	defer f.Close()
	col := metrics.New(1e6)
	e.SetCollector(col)
	e.Bind("echo", func(node int, arg []byte) ([]byte, int64) { return arg, 1 })
	c := caller(0)
	a := e.NewAggregator(c, AggregatorConfig{MaxOps: 4, MaxBytes: 1 << 20, Window: 1 << 40})

	var futs []*Future
	for i := 0; i < 9; i++ { // two full buckets + one remainder
		futs = append(futs, a.Invoke(1, "echo", []byte{byte(i)}))
	}
	a.FlushAll()
	for _, fu := range futs {
		if _, err := fu.Wait(c); err != nil {
			t.Fatal(err)
		}
	}
	if got := col.Total(metrics.OpsAggregated, 1); got != 9 {
		t.Fatalf("ror_ops_aggregated = %v, want 9", got)
	}
	if got := col.Total(metrics.AggFlushes, 1); got != 3 {
		t.Fatalf("ror_agg_flushes = %v, want 3", got)
	}
}

// TestBatchAddCopiesArg: Batch.Add must not alias the caller's slice — the
// historical bug let a reused scratch buffer corrupt queued sub-calls.
func TestBatchAddCopiesArg(t *testing.T) {
	e, f := newTestEngine(2)
	defer f.Close()
	e.Bind("echo", func(node int, arg []byte) ([]byte, int64) { return arg, 1 })
	c := caller(0)
	b := e.NewBatch(1)
	scratch := make([]byte, 8)
	for i := 0; i < 3; i++ {
		for j := range scratch {
			scratch[j] = byte('a' + i)
		}
		b.Add("echo", scratch) // same backing array every time
	}
	resps, err := b.Flush(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		want := bytes.Repeat([]byte{byte('a' + i)}, 8)
		if !bytes.Equal(r, want) {
			t.Fatalf("sub-call %d saw %q, want %q — Add aliased the caller's buffer", i, r, want)
		}
	}
}
