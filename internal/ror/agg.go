package ror

import (
	"hcl/internal/metrics"
	"hcl/internal/trace"
)

// AggregatorConfig tunes the adaptive request aggregator. Zero fields take
// the defaults noted on each; see docs/TRANSPORT.md for guidance.
type AggregatorConfig struct {
	// MaxOps flushes a destination's bucket once it holds this many
	// pending invocations (default 16).
	MaxOps int
	// MaxBytes flushes a bucket once its pending argument bytes reach
	// this size (default 4096). One invocation whose argument alone
	// reaches it ships immediately rather than waiting for company.
	MaxBytes int
	// Window flushes a bucket whose oldest pending invocation is this
	// many virtual nanoseconds old (default 50_000, i.e. 50µs). Age is
	// checked against the owning rank's clock at every Invoke, so
	// flushing is deterministic — no wall timers.
	Window int64
}

func (c AggregatorConfig) withDefaults() AggregatorConfig {
	if c.MaxOps <= 0 {
		c.MaxOps = 16
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 4096
	}
	if c.Window <= 0 {
		c.Window = 50_000
	}
	return c
}

// aggBucket is the pending traffic for one destination node.
type aggBucket struct {
	calls    []subCall
	arena    []byte
	futs     []*Future
	times    []int64 // per-call enqueue times, filled only while tracing
	openedAt int64   // virtual time the oldest pending invocation arrived
}

// Aggregator coalesces small invocations per destination into batched
// round trips — the paper's request-aggregation optimization made
// adaptive: each Invoke parks in a per-node bucket and ships when the
// bucket grows past MaxOps or MaxBytes or its oldest occupant ages past
// Window. Callers hold a Future per invocation and are fanned the batch's
// sub-responses when it lands.
//
// An Aggregator belongs to one rank, like a Batch: it is not safe for
// concurrent use, and the latency window is measured on that rank's
// virtual clock. Flush boundaries are therefore deterministic functions of
// the invocation sequence — the same program aggregates the same way in
// simulation and over sockets.
//
// Pending invocations ship only at Invoke/Flush/FlushAll boundaries; a
// rank going quiet must FlushAll (or Flush the node) before waiting on its
// futures, or they never complete.
type Aggregator struct {
	e       *Engine
	c       Caller
	cfg     AggregatorConfig
	buckets map[int]*aggBucket
}

// NewAggregator returns an aggregator issuing invocations as c.
func (e *Engine) NewAggregator(c Caller, cfg AggregatorConfig) *Aggregator {
	return &Aggregator{
		e:       e,
		c:       c,
		cfg:     cfg.withDefaults(),
		buckets: make(map[int]*aggBucket),
	}
}

// Invoke queues fn(arg) for node and returns its Future. The argument is
// copied; the caller may reuse arg immediately. The call ships with its
// bucket — possibly within this Invoke, when a threshold trips.
func (a *Aggregator) Invoke(node int, fn string, arg []byte) *Future {
	// Dataplane read-through: a lease-cache hit is answered before the
	// call ever joins a bucket — no aggregation, no round trip.
	if h := a.e.readThroughFor(fn); h != nil {
		if resp, ok := h(arg); ok {
			return immediateFuture(resp, a.c.Clock().Now())
		}
	}
	b := a.buckets[node]
	if b == nil {
		b = &aggBucket{}
		a.buckets[node] = b
	}
	now := a.c.Clock().Now()
	// Age out a bucket whose oldest occupant has waited past the window
	// before admitting more traffic behind it.
	if len(b.calls) > 0 && now-b.openedAt >= a.cfg.Window {
		a.flushBucket(node, b)
	}
	if len(b.calls) == 0 {
		b.openedAt = now
	}
	off := len(b.arena)
	b.arena = append(b.arena, arg...)
	b.calls = append(b.calls, subCall{fn: fn, arg: b.arena[off:len(b.arena):len(b.arena)]})
	if a.e.tracer.Load() != nil {
		b.times = append(b.times, now)
	}
	f := &Future{done: make(chan struct{})}
	b.futs = append(b.futs, f)
	if len(b.calls) >= a.cfg.MaxOps || len(b.arena) >= a.cfg.MaxBytes {
		a.flushBucket(node, b)
	}
	return f
}

// Pending reports the number of queued invocations for node.
func (a *Aggregator) Pending(node int) int {
	if b := a.buckets[node]; b != nil {
		return len(b.calls)
	}
	return 0
}

// Flush ships node's bucket now, regardless of thresholds.
func (a *Aggregator) Flush(node int) {
	if b := a.buckets[node]; b != nil && len(b.calls) > 0 {
		a.flushBucket(node, b)
	}
}

// FlushAll ships every non-empty bucket.
func (a *Aggregator) FlushAll() {
	for node, b := range a.buckets {
		if len(b.calls) > 0 {
			a.flushBucket(node, b)
		}
	}
}

// flushBucket ships one bucket as a batch round trip on a detached clock
// and fans the sub-responses out to the pending futures. The bucket is
// reset for reuse before the exchange starts.
func (a *Aggregator) flushBucket(node int, b *aggBucket) {
	// The flush is its own trace: a root span for the batch round trip,
	// with one agg.residence child per invocation covering the virtual
	// time it sat in the bucket waiting for company.
	tr := a.e.tracer.Load()
	var tc trace.Ctx
	var rootID uint64
	var residence []trace.Span
	flushAt := a.c.Clock().Now()
	if tr != nil {
		tc, rootID = tr.StartTrace()
		if len(b.times) == len(b.calls) {
			for i, sc := range b.calls {
				residence = append(residence, trace.Span{
					TraceID: tc.TraceID, ID: tr.NewID(), Parent: rootID,
					Name: "agg.residence", Verb: sc.fn, Node: node,
					Start: b.times[i], End: flushAt,
				})
			}
		}
	}

	req := encodeBatchBuf(b.calls, tc)
	futs := b.futs
	n := len(b.calls)
	b.calls = b.calls[:0]
	b.arena = b.arena[:0]
	b.futs = nil
	b.times = b.times[:0]

	a.e.count(metrics.OpsAggregated, node, a.c, float64(n))
	a.e.count(metrics.AggFlushes, node, a.c, 1)

	side := newSideClock(a.c)
	side.SetTrace(tc)
	ref := a.c.Ref()
	prov := a.e.providerFor(a.c)
	go func() {
		raw, err := prov.RoundTrip(side, ref, node, req.b)
		var resps [][]byte
		if err == nil {
			req.release()
			var payload []byte
			if payload, err = decodeResponse(raw); err == nil {
				resps, err = decodeBatchResponses(payload)
			}
			if err == nil && len(resps) != len(futs) {
				err = errBatchFanout(len(resps), len(futs))
			}
		}
		readyAt := side.Now()
		if tr != nil {
			for _, s := range residence {
				tr.Record(s)
			}
			tr.FinishRoot(trace.Span{
				TraceID: tc.TraceID, ID: rootID, Name: "agg.flush", Verb: "batch",
				Node: node, Start: flushAt, End: readyAt,
			})
		}
		for i, f := range futs {
			if err != nil {
				f.err = err
			} else {
				f.resp = resps[i]
			}
			f.readyAt = readyAt
			close(f.done)
		}
	}()
}
