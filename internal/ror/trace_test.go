package ror

import (
	"testing"

	"hcl/internal/fabric"
	"hcl/internal/fabric/simfab"
	"hcl/internal/metrics"
	"hcl/internal/trace"
)

// tracedEngine builds an engine over a traced sim fabric, tracer shared by
// both layers.
func tracedEngine(nodes int) (*Engine, *simfab.Fabric, *trace.Tracer) {
	tr := trace.New(0)
	f := simfab.New(nodes, fabric.DefaultCostModel(), simfab.WithTracer(tr))
	e := NewEngine(f)
	e.SetTracer(tr)
	return e, f, tr
}

func spansByName(spans []trace.Span) map[string][]trace.Span {
	m := make(map[string][]trace.Span)
	for _, s := range spans {
		m[s.Name] = append(m[s.Name], s)
	}
	return m
}

func TestInvokeProducesSpanTree(t *testing.T) {
	e, f, tr := tracedEngine(2)
	defer f.Close()
	e.Bind("echo", func(node int, arg []byte) ([]byte, int64) { return arg, 10 })

	c := caller(0)
	if _, err := e.Invoke(c, 1, "echo", []byte("x")); err != nil {
		t.Fatal(err)
	}

	// Exactly one trace: find it via the recorded root span.
	var root trace.Span
	for _, s := range tr.Recent(0) {
		if s.Name == "rpc" {
			root = s
		}
	}
	if root.TraceID == 0 {
		t.Fatalf("no root span recorded: %+v", tr.Recent(0))
	}
	if root.Verb != "echo" || root.Node != 1 {
		t.Fatalf("root = %+v", root)
	}

	byName := spansByName(tr.Spans(root.TraceID))
	// Engine layer: container execution. Fabric layer: the simulated
	// wire/queue/service/response decomposition.
	for _, name := range []string{"rpc", "container.exec", "wire", "server.queue", "nic.exec", "response"} {
		if len(byName[name]) != 1 {
			t.Fatalf("span %q count = %d; spans: %+v", name, len(byName[name]), byName)
		}
	}
	// Fabric segments are siblings under the root and sum within it
	// (virtual clocks, so the accounting is exact).
	var sum int64
	for _, name := range []string{"wire", "server.queue", "nic.exec", "response"} {
		s := byName[name][0]
		if s.Parent != root.ID {
			t.Fatalf("%s parent = %d, want root %d", name, s.Parent, root.ID)
		}
		sum += s.Duration()
	}
	if sum <= 0 || sum > root.Duration() {
		t.Fatalf("segments sum %d outside root duration %d", sum, root.Duration())
	}
}

func TestUntracedInvokeRecordsNothing(t *testing.T) {
	e, f := newTestEngine(2)
	defer f.Close()
	e.Bind("echo", func(node int, arg []byte) ([]byte, int64) { return arg, 10 })
	if _, err := e.Invoke(caller(0), 1, "echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// No tracer anywhere: the caller's clock must carry no context either.
	if e.Tracer() != nil {
		t.Fatal("engine grew a tracer")
	}
}

func TestInvokeAsyncTraced(t *testing.T) {
	e, f, tr := tracedEngine(2)
	defer f.Close()
	e.Bind("echo", func(node int, arg []byte) ([]byte, int64) { return arg, 10 })

	c := caller(0)
	fut := e.InvokeAsync(c, 1, "echo", []byte("x"))
	if _, err := fut.Wait(c); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, s := range tr.Recent(0) {
		if s.Name == "rpc.async" && s.Verb == "echo" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no rpc.async root: %+v", tr.Recent(0))
	}
}

func TestAggregatorTraced(t *testing.T) {
	e, f, tr := tracedEngine(2)
	defer f.Close()
	e.Bind("echo", func(node int, arg []byte) ([]byte, int64) { return arg, 10 })

	c := caller(0)
	a := e.NewAggregator(c, AggregatorConfig{MaxOps: 2})
	f1 := a.Invoke(1, "echo", []byte("a"))
	f2 := a.Invoke(1, "echo", []byte("b")) // trips MaxOps, flushes
	for _, fu := range []*Future{f1, f2} {
		if _, err := fu.Wait(c); err != nil {
			t.Fatal(err)
		}
	}

	var flush trace.Span
	for _, s := range tr.Recent(0) {
		if s.Name == "agg.flush" {
			flush = s
		}
	}
	if flush.TraceID == 0 {
		t.Fatalf("no agg.flush root: %+v", tr.Recent(0))
	}
	byName := spansByName(tr.Spans(flush.TraceID))
	if len(byName["agg.residence"]) != 2 {
		t.Fatalf("residence spans: %+v", byName["agg.residence"])
	}
	for _, s := range byName["agg.residence"] {
		if s.Parent != flush.ID || s.Verb != "echo" {
			t.Fatalf("residence span %+v under root %d", s, flush.ID)
		}
	}
	if len(byName["container.exec"]) != 2 {
		t.Fatalf("exec spans in batch: %+v", byName["container.exec"])
	}
}

func TestTraceCtxOnWire(t *testing.T) {
	// The 17-byte context must survive encode/decode of both request kinds.
	tc := trace.Ctx{TraceID: 7, Parent: 9, Attempt: 2}
	req := encodeCallBuf([]string{"fn"}, []byte("arg"), tc)
	dec, err := decodeRequest(req.b)
	if err != nil {
		t.Fatal(err)
	}
	if dec.tc != tc {
		t.Fatalf("call ctx = %+v, want %+v", dec.tc, tc)
	}
	req.release()

	breq := encodeBatchBuf([]subCall{{fn: "fn", arg: []byte("a")}}, tc)
	bdec, err := decodeRequest(breq.b)
	if err != nil {
		t.Fatal(err)
	}
	if bdec.tc != tc {
		t.Fatalf("batch ctx = %+v, want %+v", bdec.tc, tc)
	}
	breq.release()

	// Untraced requests stay byte-identical to the legacy encoding: no
	// flag bit, no context bytes.
	plain := encodeCall([]string{"fn"}, []byte("arg"))
	flagged := encodeCallBuf([]string{"fn"}, []byte("arg"), trace.Ctx{})
	if string(plain) != string(flagged.b) {
		t.Fatalf("zero ctx changed the wire format")
	}
	flagged.release()
}

func TestTracedInvokeObservesHistograms(t *testing.T) {
	e, f, _ := tracedEngine(2)
	defer f.Close()
	col := metrics.New(1e6)
	e.SetCollector(col)
	e.Bind("echo", func(node int, arg []byte) ([]byte, int64) { return arg, 10 })
	if _, err := e.Invoke(caller(0), 1, "echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot()
	if h := snap.Hist("rpc.echo"); h.Count != 1 {
		t.Fatalf("rpc.echo hist: %+v", snap.Histograms)
	}
	if h := snap.Hist("exec.echo"); h.Count != 1 {
		t.Fatalf("exec.echo hist: %+v", snap.Histograms)
	}
}
