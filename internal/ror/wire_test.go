package ror

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCallWireRoundTrip(t *testing.T) {
	prop := func(names []string, arg []byte) bool {
		if len(names) > 200 {
			names = names[:200]
		}
		chain := make([]string, 0, len(names))
		for _, n := range names {
			if len(n) > 1000 {
				n = n[:1000]
			}
			chain = append(chain, n)
		}
		if len(chain) == 0 {
			chain = []string{"f"}
		}
		req, err := decodeRequest(encodeCall(chain, arg))
		if err != nil || req.kind != kindCall {
			return false
		}
		if len(req.chain) != len(chain) {
			return false
		}
		for i := range chain {
			if req.chain[i] != chain[i] {
				return false
			}
		}
		return bytes.Equal(req.arg, arg) || (len(req.arg) == 0 && len(arg) == 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchWireRoundTrip(t *testing.T) {
	prop := func(fns []string, args [][]byte) bool {
		n := len(fns)
		if len(args) < n {
			n = len(args)
		}
		if n > 100 {
			n = 100
		}
		calls := make([]subCall, 0, n)
		for i := 0; i < n; i++ {
			fn := fns[i]
			if len(fn) > 500 {
				fn = fn[:500]
			}
			calls = append(calls, subCall{fn: fn, arg: args[i]})
		}
		if len(calls) == 0 {
			return true
		}
		req, err := decodeRequest(encodeBatch(calls))
		if err != nil || req.kind != kindBatch || len(req.batch) != len(calls) {
			return false
		}
		for i, c := range calls {
			if req.batch[i].fn != c.fn || !bytes.Equal(req.batch[i].arg, c.arg) {
				if !(len(req.batch[i].arg) == 0 && len(c.arg) == 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRequestTruncationNeverPanics(t *testing.T) {
	// Any prefix of a valid frame must fail cleanly, not panic.
	full := encodeCall([]string{"alpha", "beta"}, []byte("payload"))
	for i := 0; i < len(full); i++ {
		decodeRequest(full[:i]) // must not panic; errors are fine
	}
	fullBatch := encodeBatch([]subCall{{fn: "f", arg: []byte("xyz")}, {fn: "g"}})
	for i := 0; i < len(fullBatch); i++ {
		decodeRequest(fullBatch[:i])
	}
}

func TestResponseRoundTrip(t *testing.T) {
	payload := []byte("result bytes")
	got, err := decodeResponse(encodeResponse(payload, nil))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("ok response: %q %v", got, err)
	}
	if _, err := decodeResponse(encodeResponse(nil, errTestSentinel{})); err == nil {
		t.Fatal("error response must decode to error")
	}
	if _, err := decodeResponse(nil); err == nil {
		t.Fatal("empty response must fail")
	}
	if _, err := decodeResponse([]byte{9}); err == nil {
		t.Fatal("bad status must fail")
	}
}

func TestBatchResponsesRoundTrip(t *testing.T) {
	in := [][]byte{[]byte("a"), nil, []byte("ccc")}
	out, err := decodeBatchResponses(encodeBatchResponses(in))
	if err != nil || len(out) != 3 {
		t.Fatalf("batch responses: %v %v", out, err)
	}
	if string(out[0]) != "a" || len(out[1]) != 0 || string(out[2]) != "ccc" {
		t.Fatalf("batch responses = %q", out)
	}
	if _, err := decodeBatchResponses([]byte{1}); err == nil {
		t.Fatal("truncated batch responses must fail")
	}
}

type errTestSentinel struct{}

func (errTestSentinel) Error() string { return "sentinel" }
