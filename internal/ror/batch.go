package ror

import (
	"errors"

	"hcl/internal/fabric"
)

// Batch aggregates multiple invocations destined for the same node into a
// single wire exchange — the paper's request-aggregation optimization: the
// NIC processes the sub-calls back to back and the responses return in one
// pull. A Batch is not safe for concurrent use; each rank builds its own.
type Batch struct {
	e     *Engine
	node  int
	calls []subCall
	arena []byte // backing store for copied args, reset on Flush
}

// NewBatch starts an empty batch aimed at node.
func (e *Engine) NewBatch(node int) *Batch {
	return &Batch{e: e, node: node}
}

// Add appends one sub-call. The argument bytes are copied into the batch's
// arena, so the caller may reuse or mutate arg immediately — Add never
// retains it.
func (b *Batch) Add(fn string, arg []byte) {
	off := len(b.arena)
	b.arena = append(b.arena, arg...)
	b.calls = append(b.calls, subCall{fn: fn, arg: b.arena[off:len(b.arena):len(b.arena)]})
}

// Len reports the number of pending sub-calls.
func (b *Batch) Len() int { return len(b.calls) }

// Flush ships the batch as one round trip and returns the per-call
// responses in order. The batch is reset for reuse.
func (b *Batch) Flush(c Caller) ([][]byte, error) {
	if len(b.calls) == 0 {
		return nil, nil
	}
	req := encodeBatchBuf(b.calls, c.Clock().Trace())
	b.reset()
	raw, err := b.e.providerFor(c).RoundTrip(c.Clock(), c.Ref(), b.node, req.b)
	if err != nil {
		return nil, err
	}
	req.release()
	payload, err := decodeResponse(raw)
	if err != nil {
		return nil, err
	}
	return decodeBatchResponses(payload)
}

// reset clears the batch for reuse; the encoded request owns copies of
// everything, so the arena can be recycled immediately.
func (b *Batch) reset() {
	b.calls = b.calls[:0]
	b.arena = b.arena[:0]
}

// FlushAsync ships the batch asynchronously; the returned BatchFuture
// yields per-call responses.
func (b *Batch) FlushAsync(c Caller) *BatchFuture {
	bf := &BatchFuture{f: &Future{done: make(chan struct{})}}
	if len(b.calls) == 0 {
		bf.empty = true
		close(bf.f.done)
		bf.f.readyAt = c.Clock().Now()
		return bf
	}
	req := encodeBatchBuf(b.calls, c.Clock().Trace())
	b.reset()
	side := newSideClock(c)
	ref := c.Ref()
	prov := b.e.providerFor(c)
	go func() {
		defer close(bf.f.done)
		raw, err := prov.RoundTrip(side, ref, b.node, req.b)
		if err != nil {
			bf.f.err = err
		} else {
			req.release()
			bf.f.resp, bf.f.err = decodeResponse(raw)
		}
		bf.f.readyAt = side.Now()
	}()
	return bf
}

// BatchFuture is the pending result of FlushAsync.
type BatchFuture struct {
	f     *Future
	empty bool
}

// Wait blocks for all sub-responses and syncs the caller's clock.
func (bf *BatchFuture) Wait(c Caller) ([][]byte, error) {
	raw, err := bf.f.Wait(c)
	if err != nil {
		return nil, err
	}
	if bf.empty {
		return nil, nil
	}
	if raw == nil {
		return nil, errors.New("ror: missing batch payload")
	}
	return decodeBatchResponses(raw)
}

// newSideClock returns a detached clock starting at the caller's current
// virtual time, so an asynchronous exchange overlaps the caller's work.
// The caller's trace context is copied along, so spans recorded for the
// detached exchange stay linked to the originating operation.
func newSideClock(c Caller) *fabric.Clock {
	clk := fabric.NewClock(c.Clock().Now())
	clk.SetTrace(c.Clock().Trace())
	return clk
}
