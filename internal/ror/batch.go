package ror

import (
	"errors"

	"hcl/internal/fabric"
)

// Batch aggregates multiple invocations destined for the same node into a
// single wire exchange — the paper's request-aggregation optimization: the
// NIC processes the sub-calls back to back and the responses return in one
// pull. A Batch is not safe for concurrent use; each rank builds its own.
type Batch struct {
	e     *Engine
	node  int
	calls []subCall
}

// NewBatch starts an empty batch aimed at node.
func (e *Engine) NewBatch(node int) *Batch {
	return &Batch{e: e, node: node}
}

// Add appends one sub-call. The argument slice is retained until Flush.
func (b *Batch) Add(fn string, arg []byte) {
	b.calls = append(b.calls, subCall{fn: fn, arg: arg})
}

// Len reports the number of pending sub-calls.
func (b *Batch) Len() int { return len(b.calls) }

// Flush ships the batch as one round trip and returns the per-call
// responses in order. The batch is reset for reuse.
func (b *Batch) Flush(c Caller) ([][]byte, error) {
	if len(b.calls) == 0 {
		return nil, nil
	}
	req := encodeBatch(b.calls)
	b.calls = b.calls[:0]
	raw, err := b.e.providerFor(c).RoundTrip(c.Clock(), c.Ref(), b.node, req)
	if err != nil {
		return nil, err
	}
	payload, err := decodeResponse(raw)
	if err != nil {
		return nil, err
	}
	return decodeBatchResponses(payload)
}

// FlushAsync ships the batch asynchronously; the returned BatchFuture
// yields per-call responses.
func (b *Batch) FlushAsync(c Caller) *BatchFuture {
	bf := &BatchFuture{f: &Future{done: make(chan struct{})}}
	if len(b.calls) == 0 {
		bf.empty = true
		close(bf.f.done)
		bf.f.readyAt = c.Clock().Now()
		return bf
	}
	req := encodeBatch(b.calls)
	b.calls = b.calls[:0]
	side := newSideClock(c)
	ref := c.Ref()
	prov := b.e.providerFor(c)
	go func() {
		defer close(bf.f.done)
		raw, err := prov.RoundTrip(side, ref, b.node, req)
		if err != nil {
			bf.f.err = err
		} else {
			bf.f.resp, bf.f.err = decodeResponse(raw)
		}
		bf.f.readyAt = side.Now()
	}()
	return bf
}

// BatchFuture is the pending result of FlushAsync.
type BatchFuture struct {
	f     *Future
	empty bool
}

// Wait blocks for all sub-responses and syncs the caller's clock.
func (bf *BatchFuture) Wait(c Caller) ([][]byte, error) {
	raw, err := bf.f.Wait(c)
	if err != nil {
		return nil, err
	}
	if bf.empty {
		return nil, nil
	}
	if raw == nil {
		return nil, errors.New("ror: missing batch payload")
	}
	return decodeBatchResponses(raw)
}

// newSideClock returns a detached clock starting at the caller's current
// virtual time, so an asynchronous exchange overlaps the caller's work.
func newSideClock(c Caller) *fabric.Clock { return fabric.NewClock(c.Clock().Now()) }
