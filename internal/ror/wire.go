package ror

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"hcl/internal/trace"
)

// Wire format. Requests:
//
//	call:  [kind=0][nchain u8]([len u16][name])...[arg]
//	batch: [kind=1][count u32]([fnlen u16][fn][arglen u32][arg])...
//
// A traced request sets kindTraceFlag on the kind byte and inserts a
// trace.CtxWireLen-byte trace context between the kind byte and the
// body. Untraced requests are byte-identical to the pre-tracing format.
//
// Responses:
//
//	[status u8][payload]            status 0 = ok, 1 = error string
//
// Batch payloads: [count u32]([len u32][resp])...
const (
	kindCall  = 0
	kindBatch = 1

	// kindTraceFlag marks a request carrying a trace context. Flagged on
	// the kind byte so old decoders reject rather than misparse.
	kindTraceFlag = 0x80

	statusOK  = 0
	statusErr = 1
)

type subCall struct {
	fn  string
	arg []byte
}

type request struct {
	kind  byte
	chain []string
	arg   []byte
	batch []subCall
	tc    trace.Ctx // zero when the request was untraced
}

var errTruncated = errors.New("ror: truncated request")

func errBatchFanout(got, want int) error {
	return fmt.Errorf("ror: batch returned %d responses for %d calls", got, want)
}

// encBuf is a pooled request-encode buffer. Requests travel down through
// the provider and, on pipelined transports, may sit in a send queue after
// a timeout — so callers release only once the round trip succeeded (a
// failed exchange leaks the buffer to the GC, which is always safe).
type encBuf struct{ b []byte }

// maxPooledEnc keeps one-off giant requests from pinning pool memory.
const maxPooledEnc = 1 << 20

var encPool = sync.Pool{New: func() any { return new(encBuf) }}

// grabEnc returns a pooled buffer of exactly n bytes.
func grabEnc(n int) *encBuf {
	eb := encPool.Get().(*encBuf)
	if cap(eb.b) < n {
		eb.b = make([]byte, n)
	}
	eb.b = eb.b[:n]
	return eb
}

func (eb *encBuf) release() {
	if eb == nil {
		return
	}
	if cap(eb.b) > maxPooledEnc {
		eb.b = nil
	}
	encPool.Put(eb)
}

// encodeCallBuf marshals a call request into an exactly-sized pooled
// buffer. A valid trace context flags the kind byte and rides between it
// and the body; the zero context produces the legacy encoding unchanged.
func encodeCallBuf(chain []string, arg []byte, tc trace.Ctx) *encBuf {
	hdr := 2
	if tc.Valid() {
		hdr += trace.CtxWireLen
	}
	n := hdr
	for _, s := range chain {
		n += 2 + len(s)
	}
	eb := grabEnc(n + len(arg))
	b := eb.b
	b[0] = kindCall
	p := 1
	if tc.Valid() {
		b[0] |= kindTraceFlag
		trace.PutCtx(b[p:], tc)
		p += trace.CtxWireLen
	}
	b[p] = byte(len(chain))
	p++
	for _, s := range chain {
		binary.LittleEndian.PutUint16(b[p:], uint16(len(s)))
		p += 2
		p += copy(b[p:], s)
	}
	copy(b[p:], arg)
	return eb
}

// encodeBatchBuf marshals a batch request into an exactly-sized pooled
// buffer.
func encodeBatchBuf(calls []subCall, tc trace.Ctx) *encBuf {
	n := 5
	if tc.Valid() {
		n += trace.CtxWireLen
	}
	for _, c := range calls {
		n += 6 + len(c.fn) + len(c.arg)
	}
	eb := grabEnc(n)
	b := eb.b
	b[0] = kindBatch
	p := 1
	if tc.Valid() {
		b[0] |= kindTraceFlag
		trace.PutCtx(b[p:], tc)
		p += trace.CtxWireLen
	}
	binary.LittleEndian.PutUint32(b[p:], uint32(len(calls)))
	p += 4
	for _, c := range calls {
		binary.LittleEndian.PutUint16(b[p:], uint16(len(c.fn)))
		p += 2
		p += copy(b[p:], c.fn)
		binary.LittleEndian.PutUint32(b[p:], uint32(len(c.arg)))
		p += 4
		p += copy(b[p:], c.arg)
	}
	return eb
}

func encodeCall(chain []string, arg []byte) []byte {
	eb := encodeCallBuf(chain, arg, trace.Ctx{})
	out := append([]byte(nil), eb.b...)
	eb.release()
	return out
}

func encodeBatch(calls []subCall) []byte {
	eb := encodeBatchBuf(calls, trace.Ctx{})
	out := append([]byte(nil), eb.b...)
	eb.release()
	return out
}

func decodeRequest(b []byte) (request, error) {
	if len(b) < 1 {
		return request{}, errTruncated
	}
	kind := b[0]
	body := b[1:]
	var tc trace.Ctx
	if kind&kindTraceFlag != 0 {
		kind &^= kindTraceFlag
		var err error
		if tc, err = trace.ReadCtx(body); err != nil {
			return request{}, errTruncated
		}
		body = body[trace.CtxWireLen:]
	}
	switch kind {
	case kindCall:
		r, err := decodeCallRequest(body)
		r.tc = tc
		return r, err
	case kindBatch:
		r, err := decodeBatchRequest(body)
		r.tc = tc
		return r, err
	default:
		return request{kind: kind, tc: tc}, nil
	}
}

// decodeCallRequest parses a call body (everything after the kind byte
// and optional trace context).
func decodeCallRequest(b []byte) (request, error) {
	if len(b) < 1 {
		return request{}, errTruncated
	}
	nchain := int(b[0])
	p := 1
	chain := make([]string, 0, nchain)
	for i := 0; i < nchain; i++ {
		if p+2 > len(b) {
			return request{}, errTruncated
		}
		l := int(binary.LittleEndian.Uint16(b[p:]))
		p += 2
		if p+l > len(b) {
			return request{}, errTruncated
		}
		chain = append(chain, string(b[p:p+l]))
		p += l
	}
	return request{kind: kindCall, chain: chain, arg: b[p:]}, nil
}

// decodeBatchRequest parses a batch body (everything after the kind byte
// and optional trace context).
func decodeBatchRequest(b []byte) (request, error) {
	if len(b) < 4 {
		return request{}, errTruncated
	}
	count := int(binary.LittleEndian.Uint32(b))
	p := 4
	batch := make([]subCall, 0, count)
	for i := 0; i < count; i++ {
		if p+2 > len(b) {
			return request{}, errTruncated
		}
		fl := int(binary.LittleEndian.Uint16(b[p:]))
		p += 2
		if p+fl+4 > len(b) {
			return request{}, errTruncated
		}
		fn := string(b[p : p+fl])
		p += fl
		al := int(binary.LittleEndian.Uint32(b[p:]))
		p += 4
		if p+al > len(b) {
			return request{}, errTruncated
		}
		batch = append(batch, subCall{fn: fn, arg: b[p : p+al]})
		p += al
	}
	return request{kind: kindBatch, batch: batch}, nil
}

func encodeResponse(payload []byte, err error) []byte {
	if err != nil {
		msg := err.Error()
		out := make([]byte, 0, 1+len(msg))
		out = append(out, statusErr)
		return append(out, msg...)
	}
	out := make([]byte, 0, 1+len(payload))
	out = append(out, statusOK)
	return append(out, payload...)
}

func decodeResponse(b []byte) ([]byte, error) {
	if len(b) < 1 {
		return nil, errors.New("ror: empty response")
	}
	switch b[0] {
	case statusOK:
		return b[1:], nil
	case statusErr:
		return nil, fmt.Errorf("ror: remote: %s", string(b[1:]))
	default:
		return nil, fmt.Errorf("ror: bad response status %d", b[0])
	}
}

func encodeBatchResponses(resps [][]byte) []byte {
	n := 4
	for _, r := range resps {
		n += 4 + len(r)
	}
	out := make([]byte, 0, n)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(resps)))
	for _, r := range resps {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(r)))
		out = append(out, r...)
	}
	return out
}

func decodeBatchResponses(b []byte) ([][]byte, error) {
	if len(b) < 4 {
		return nil, errors.New("ror: truncated batch response")
	}
	count := int(binary.LittleEndian.Uint32(b))
	p := 4
	out := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		if p+4 > len(b) {
			return nil, errors.New("ror: truncated batch response")
		}
		l := int(binary.LittleEndian.Uint32(b[p:]))
		p += 4
		if p+l > len(b) {
			return nil, errors.New("ror: truncated batch response")
		}
		out = append(out, b[p:p+l])
		p += l
	}
	return out, nil
}
