// Package cluster provides the parallel runtime the library runs on: a set
// of logical nodes, each hosting a number of ranks (client processes). In
// the paper this is an MPI world of 2560 ranks over 64 nodes; here ranks
// are goroutines with virtual clocks, and node identity — the thing the
// hybrid access model keys on — is explicit placement.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"hcl/internal/fabric"
)

// Rank is one client process. A Rank (and its clock) is owned by exactly
// one goroutine for the duration of a parallel region.
type Rank struct {
	id   int
	node int
	clk  *fabric.Clock
	w    *World
	opts fabric.Options
}

// ID reports the global rank id.
func (r *Rank) ID() int { return r.id }

// Node reports the node the rank lives on.
func (r *Rank) Node() int { return r.node }

// Clock returns the rank's virtual clock.
func (r *Rank) Clock() *fabric.Clock { return r.clk }

// Ref returns the fabric-level identity of the rank.
func (r *Rank) Ref() fabric.RankRef { return fabric.RankRef{Rank: r.id, Node: r.node} }

// World returns the world the rank belongs to.
func (r *Rank) World() *World { return r.w }

// Provider returns the world's fabric provider.
func (r *Rank) Provider() fabric.Provider { return r.w.prov }

// OpOptions implements ror.OptionsCarrier: the per-operation fabric
// options every invocation issued through this rank carries.
func (r *Rank) OpOptions() fabric.Options { return r.opts }

// WithOptions returns a derived rank — same identity, same clock — whose
// operations carry o overlaid on the rank's current options. The usual
// form is per-call: m.Insert(r.WithDeadline(200*time.Millisecond), k, v).
func (r *Rank) WithOptions(o fabric.Options) *Rank {
	d := *r
	d.opts = r.opts.Merge(o)
	return &d
}

// WithDeadline is shorthand for WithOptions with only a deadline: every
// operation issued through the derived rank fails with fabric.ErrTimeout
// (or fabric.ErrNodeDown) instead of blocking past d.
func (r *Rank) WithDeadline(d time.Duration) *Rank {
	return r.WithOptions(fabric.Options{Deadline: d})
}

// World is a collection of ranks placed on nodes over one fabric provider.
type World struct {
	prov      fabric.Provider
	placement []int
	ranks     []*Rank
}

// Placement strategies -------------------------------------------------

// Block places count ranks evenly over nodes [0,nodes): rank i lives on
// node i/(count/nodes). count must be a multiple of nodes.
func Block(nodes, count int) []int {
	if nodes < 1 || count < 1 || count%nodes != 0 {
		panic(fmt.Sprintf("cluster: Block(%d,%d): count must be a positive multiple of nodes", nodes, count))
	}
	per := count / nodes
	p := make([]int, count)
	for i := range p {
		p[i] = i / per
	}
	return p
}

// OnNode places count ranks all on one node (the paper's motivating test
// uses 40 clients on one node targeting a partition on another).
func OnNode(node, count int) []int {
	p := make([]int, count)
	for i := range p {
		p[i] = node
	}
	return p
}

// NewWorld builds a world with the given rank placement (placement[i] is
// the node of rank i). Node ids must be within the provider's node count.
func NewWorld(prov fabric.Provider, placement []int) (*World, error) {
	w := &World{prov: prov, placement: placement}
	w.ranks = make([]*Rank, len(placement))
	for i, n := range placement {
		if n < 0 || n >= prov.NumNodes() {
			return nil, fmt.Errorf("cluster: rank %d placed on node %d, provider has %d nodes",
				i, n, prov.NumNodes())
		}
		w.ranks[i] = &Rank{id: i, node: n, clk: fabric.NewClock(0), w: w}
	}
	return w, nil
}

// MustWorld is NewWorld that panics on error, for tests and examples.
func MustWorld(prov fabric.Provider, placement []int) *World {
	w, err := NewWorld(prov, placement)
	if err != nil {
		panic(err)
	}
	return w
}

// Provider returns the fabric provider.
func (w *World) Provider() fabric.Provider { return w.prov }

// NumRanks reports the number of ranks in the world.
func (w *World) NumRanks() int { return len(w.ranks) }

// NumNodes reports the number of fabric nodes.
func (w *World) NumNodes() int { return w.prov.NumNodes() }

// Rank returns rank i.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// RanksOnNode returns the ranks placed on node n, in id order.
func (w *World) RanksOnNode(n int) []*Rank {
	var out []*Rank
	for _, r := range w.ranks {
		if r.node == n {
			out = append(out, r)
		}
	}
	return out
}

// Run executes body once per rank, each on its own goroutine, and waits
// for all of them — one SPMD parallel region.
func (w *World) Run(body func(*Rank)) {
	var wg sync.WaitGroup
	wg.Add(len(w.ranks))
	for _, r := range w.ranks {
		go func(r *Rank) {
			defer wg.Done()
			body(r)
		}(r)
	}
	wg.Wait()
}

// Makespan reports the maximum virtual clock across ranks: the modelled
// end-to-end time of the work performed since the last ResetClocks.
func (w *World) Makespan() int64 {
	var max int64
	for _, r := range w.ranks {
		if t := r.clk.Now(); t > max {
			max = t
		}
	}
	return max
}

// ResetClocks rewinds every rank clock to zero (between benchmark phases).
func (w *World) ResetClocks() {
	for _, r := range w.ranks {
		r.clk.Reset(0)
	}
}

// Barrier aligns every rank's clock to the current maximum, modelling a
// synchronizing collective. Call it only between parallel regions (it is
// not safe while Run is executing).
func (w *World) Barrier() {
	max := w.Makespan()
	for _, r := range w.ranks {
		r.clk.AdvanceTo(max)
	}
}
