package cluster

import (
	"sync/atomic"
	"testing"

	"hcl/internal/fabric"
	"hcl/internal/fabric/simfab"
)

func newProv(nodes int) fabric.Provider {
	return simfab.New(nodes, fabric.DefaultCostModel())
}

func TestBlockPlacement(t *testing.T) {
	p := Block(4, 8)
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for i, n := range p {
		if n != want[i] {
			t.Fatalf("Block(4,8)[%d] = %d, want %d", i, n, want[i])
		}
	}
}

func TestBlockPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Block(3,8) should panic: not a multiple")
		}
	}()
	Block(3, 8)
}

func TestOnNodePlacement(t *testing.T) {
	p := OnNode(2, 5)
	if len(p) != 5 {
		t.Fatalf("len = %d", len(p))
	}
	for _, n := range p {
		if n != 2 {
			t.Fatalf("placement = %v", p)
		}
	}
}

func TestNewWorldValidatesPlacement(t *testing.T) {
	prov := newProv(2)
	defer prov.Close()
	if _, err := NewWorld(prov, []int{0, 1, 2}); err == nil {
		t.Fatal("node 2 does not exist; want error")
	}
	w, err := NewWorld(prov, []int{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if w.NumRanks() != 3 || w.NumNodes() != 2 {
		t.Fatalf("ranks=%d nodes=%d", w.NumRanks(), w.NumNodes())
	}
	if w.Rank(2).Node() != 1 || w.Rank(2).ID() != 2 {
		t.Fatalf("rank 2 = %+v", w.Rank(2).Ref())
	}
}

func TestRanksOnNode(t *testing.T) {
	prov := newProv(2)
	defer prov.Close()
	w := MustWorld(prov, []int{0, 1, 0, 1})
	on0 := w.RanksOnNode(0)
	if len(on0) != 2 || on0[0].ID() != 0 || on0[1].ID() != 2 {
		t.Fatalf("RanksOnNode(0) ids: %d,%d", on0[0].ID(), on0[1].ID())
	}
	if len(w.RanksOnNode(1)) != 2 {
		t.Fatal("RanksOnNode(1)")
	}
}

func TestRunExecutesEveryRankConcurrently(t *testing.T) {
	prov := newProv(4)
	defer prov.Close()
	w := MustWorld(prov, Block(4, 16))
	var count atomic.Int64
	seen := make([]atomic.Bool, 16)
	w.Run(func(r *Rank) {
		count.Add(1)
		seen[r.ID()].Store(true)
		r.Clock().Advance(int64(r.ID()) * 10)
	})
	if count.Load() != 16 {
		t.Fatalf("ran %d bodies", count.Load())
	}
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("rank %d did not run", i)
		}
	}
	if ms := w.Makespan(); ms != 150 {
		t.Fatalf("Makespan = %d, want 150", ms)
	}
}

func TestResetClocksAndBarrier(t *testing.T) {
	prov := newProv(1)
	defer prov.Close()
	w := MustWorld(prov, OnNode(0, 3))
	w.Rank(0).Clock().Advance(100)
	w.Barrier()
	for i := 0; i < 3; i++ {
		if w.Rank(i).Clock().Now() != 100 {
			t.Fatalf("rank %d clock after barrier = %d", i, w.Rank(i).Clock().Now())
		}
	}
	w.ResetClocks()
	if w.Makespan() != 0 {
		t.Fatalf("Makespan after reset = %d", w.Makespan())
	}
}

func TestRankAccessors(t *testing.T) {
	prov := newProv(2)
	defer prov.Close()
	w := MustWorld(prov, []int{1})
	r := w.Rank(0)
	if r.World() != w || r.Provider() != prov {
		t.Fatal("accessor wiring")
	}
	if ref := r.Ref(); ref.Rank != 0 || ref.Node != 1 {
		t.Fatalf("Ref = %+v", ref)
	}
}
