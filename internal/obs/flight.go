// Flight recorder: a black-box ring of recent annotations (chaos events,
// fault observations, checker notes) that, on a typed fault or an
// explicit trigger, assembles a postmortem artifact — the events, the
// most recent trace spans, the last windowed metric deltas, and the
// cumulative snapshot — and optionally writes it to disk as JSON. The
// point is debuggability after the fact: when a stress shard fails in CI,
// the flight record shows what the cluster was doing in the seconds
// around the fault without anyone re-running the seed.
package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"hcl/internal/fabric"
	"hcl/internal/metrics"
	"hcl/internal/trace"
)

// FlightConfig shapes a recorder. Zero values select the defaults noted
// per field.
type FlightConfig struct {
	// Dir is where Dump writes artifacts; empty keeps records in memory
	// only (Dump still returns them).
	Dir string
	// Node attributes the recorder's own counters.
	Node int
	// Events bounds the annotation ring (default 256).
	Events int
	// Spans bounds how many recent spans a record captures (default 512).
	Spans int
	// Windows bounds how many recent windowed deltas a record captures
	// (default 8).
	Windows int
	// MaxDumps bounds files written over the recorder's lifetime
	// (default 8), so a crash loop cannot fill a disk.
	MaxDumps int
	// FaultErrors extends the typed-fault set ObserveError triggers on.
	// fabric.ErrNodeDown and fabric.ErrTimeout are always included;
	// layers above (core.ErrDegraded) register theirs here — obs cannot
	// import them without a cycle.
	FaultErrors []error
}

func (c FlightConfig) withDefaults() FlightConfig {
	if c.Events <= 0 {
		c.Events = 256
	}
	if c.Spans <= 0 {
		c.Spans = 512
	}
	if c.Windows <= 0 {
		c.Windows = 8
	}
	if c.MaxDumps <= 0 {
		c.MaxDumps = 8
	}
	return c
}

// FlightEvent is one annotation in the ring.
type FlightEvent struct {
	AtNS   int64  `json:"at_ns"`
	Kind   string `json:"kind"` // "chaos", "fault", "checker", ...
	Detail string `json:"detail"`
}

// FlightRecord is the assembled postmortem artifact.
type FlightRecord struct {
	Reason  string                   `json:"reason"`
	AtNS    int64                    `json:"at_ns"`
	Seq     int                      `json:"seq"`
	Events  []FlightEvent            `json:"events"`
	Spans   []trace.Span             `json:"spans"`
	Windows []metrics.WindowSnapshot `json:"windows"`
	Metrics metrics.Snapshot         `json:"metrics"`
	SLO     *SLOStatus               `json:"slo,omitempty"`
}

// FlightRecorder accumulates annotations and assembles records. Safe for
// concurrent use; a nil *FlightRecorder ignores all calls.
type FlightRecorder struct {
	cfg FlightConfig
	col *metrics.Collector
	tr  *trace.Tracer
	win *metrics.Windows
	slo *SLO

	mu     sync.Mutex
	events []FlightEvent
	next   int
	count  int
	seq    int
	dumps  int
	files  []string
}

// NewFlightRecorder wires a recorder to a node's observability state.
// Any of col/tr/win/slo may be nil; the matching record sections stay
// empty.
func NewFlightRecorder(cfg FlightConfig, col *metrics.Collector, tr *trace.Tracer, win *metrics.Windows, slo *SLO) *FlightRecorder {
	cfg = cfg.withDefaults()
	return &FlightRecorder{
		cfg: cfg, col: col, tr: tr, win: win, slo: slo,
		events: make([]FlightEvent, cfg.Events),
	}
}

// Note appends one annotation to the ring.
func (f *FlightRecorder) Note(atNS int64, kind, detail string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.events[f.next] = FlightEvent{AtNS: atNS, Kind: kind, Detail: detail}
	f.next = (f.next + 1) % len(f.events)
	if f.count < len(f.events) {
		f.count++
	}
	f.mu.Unlock()
}

// isFault reports whether err matches the typed-fault set.
func (f *FlightRecorder) isFault(err error) bool {
	if errors.Is(err, fabric.ErrNodeDown) || errors.Is(err, fabric.ErrTimeout) {
		return true
	}
	for _, fe := range f.cfg.FaultErrors {
		if errors.Is(err, fe) {
			return true
		}
	}
	return false
}

// ObserveError notes err when it is a typed fault (fabric.ErrNodeDown,
// fabric.ErrTimeout, or a configured extra) and reports whether it was.
// Non-fault errors are ignored — workload-level misses must not pollute
// the black box.
func (f *FlightRecorder) ObserveError(atNS int64, op string, err error) bool {
	if f == nil || err == nil || !f.isFault(err) {
		return false
	}
	f.Note(atNS, "fault", fmt.Sprintf("%s: %v", op, err))
	if f.col != nil {
		f.col.Add(metrics.FlightFaults, f.cfg.Node, atNS, 1)
	}
	return true
}

// recent returns the annotation ring oldest first; callers hold no lock.
func (f *FlightRecorder) recent() []FlightEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEvent, 0, f.count)
	start := f.next - f.count
	for i := 0; i < f.count; i++ {
		out = append(out, f.events[(start+i+len(f.events))%len(f.events)])
	}
	return out
}

// assemble builds a record without counting it as a dump.
func (f *FlightRecorder) assemble(reason string, atNS int64, seq int) FlightRecord {
	rec := FlightRecord{
		Reason:  reason,
		AtNS:    atNS,
		Seq:     seq,
		Events:  f.recent(),
		Spans:   f.tr.Recent(f.cfg.Spans),
		Windows: f.win.Recent(f.cfg.Windows),
		Metrics: f.col.Snapshot(),
	}
	if rec.Spans == nil {
		rec.Spans = []trace.Span{}
	}
	if rec.Windows == nil {
		rec.Windows = []metrics.WindowSnapshot{}
	}
	if f.slo != nil {
		st := f.slo.Evaluate()
		rec.SLO = &st
	}
	return rec
}

// Peek assembles the current record without dumping: the /flight
// endpoint's live view.
func (f *FlightRecorder) Peek() FlightRecord {
	if f == nil {
		return FlightRecord{}
	}
	return f.assemble("peek", 0, 0)
}

// Dump assembles a record for reason and, when the recorder has a Dir and
// budget left, writes it as flight-<seq>-<reason>.json. It returns the
// record and the file path ("" when nothing was written).
func (f *FlightRecorder) Dump(reason string, atNS int64) (FlightRecord, string, error) {
	if f == nil {
		return FlightRecord{}, "", nil
	}
	f.mu.Lock()
	f.seq++
	seq := f.seq
	write := f.cfg.Dir != "" && f.dumps < f.cfg.MaxDumps
	if write {
		f.dumps++
	}
	f.mu.Unlock()

	rec := f.assemble(reason, atNS, seq)
	if f.col != nil {
		f.col.Add(metrics.FlightDumps, f.cfg.Node, atNS, 1)
	}
	if !write {
		return rec, "", nil
	}
	if err := os.MkdirAll(f.cfg.Dir, 0o755); err != nil {
		return rec, "", fmt.Errorf("obs: flight dir: %w", err)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return rec, "", fmt.Errorf("obs: flight encode: %w", err)
	}
	path := filepath.Join(f.cfg.Dir, fmt.Sprintf("flight-%03d-%s.json", seq, sanitizeReason(reason)))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return rec, "", fmt.Errorf("obs: flight write: %w", err)
	}
	f.mu.Lock()
	f.files = append(f.files, path)
	f.mu.Unlock()
	return rec, path, nil
}

// Files lists the artifact paths written so far.
func (f *FlightRecorder) Files() []string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.files))
	copy(out, f.files)
	return out
}

// sanitizeReason keeps dump filenames shell- and filesystem-safe.
func sanitizeReason(r string) string {
	out := make([]byte, 0, len(r))
	for i := 0; i < len(r) && len(out) < 32; i++ {
		c := r[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
		default:
			out = append(out, '-')
		}
	}
	if len(out) == 0 {
		return "dump"
	}
	return string(out)
}
