// SLO burn-rate engine: declarative per-verb latency objectives evaluated
// over the windowed-metrics ring. An objective like {rpc.umap.* < 200µs
// for 99% of ops} is judged the way production SLO alerting judges error
// budgets: the fraction of ops over the latency bound ("bad fraction") in
// a fast window and a slow window, each divided by the allowed fraction
// (1 - target) to yield a burn rate. Only when BOTH windows burn faster
// than the threshold is the objective breached — the fast window makes
// the signal react quickly, the slow window keeps a transient blip from
// paging. Breach transitions are counted into hcl_slo_breaches.
package obs

import (
	"strings"
	"sync"
	"time"

	"hcl/internal/metrics"
)

// Objective is one latency SLO: Target fraction of the verb's operations
// must complete within Latency. Verb names a latency histogram
// ("rpc.umap.scores.insert"); a trailing '*' matches every histogram
// with the prefix, expanding to one BurnStatus per match. Histogram
// values are nanoseconds on both clocks (virtual on sim, wall on the
// socket transports), so a Duration bound compares directly.
type Objective struct {
	Verb    string        `json:"verb"`
	Latency time.Duration `json:"latency_ns"`
	Target  float64       `json:"target"` // e.g. 0.99
}

// SLOConfig is a set of objectives plus the burn-rate evaluation shape.
type SLOConfig struct {
	Objectives []Objective `json:"objectives"`
	// FastWindows / SlowWindows are the two rolling evaluation horizons,
	// in ring windows (defaults 6 and 36: one minute and six minutes at
	// ten-second rolls, or 6s/36s at one-second rolls).
	FastWindows int `json:"fast_windows,omitempty"`
	SlowWindows int `json:"slow_windows,omitempty"`
	// BurnThreshold is the multiple of the allowed bad fraction at which
	// an objective breaches (default 2: burning budget at twice the
	// sustainable rate).
	BurnThreshold float64 `json:"burn_threshold,omitempty"`
}

// withDefaults fills the evaluation-shape zero values.
func (c SLOConfig) withDefaults() SLOConfig {
	if c.FastWindows <= 0 {
		c.FastWindows = 6
	}
	if c.SlowWindows <= 0 {
		c.SlowWindows = 36
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 2
	}
	return c
}

// BurnStatus is one evaluated objective against one concrete verb.
type BurnStatus struct {
	Verb     string        `json:"verb"` // concrete histogram name
	Latency  time.Duration `json:"latency_ns"`
	Target   float64       `json:"target"`
	FastBad  float64       `json:"fast_bad_fraction"` // ops over Latency / ops, fast window
	SlowBad  float64       `json:"slow_bad_fraction"`
	FastBurn float64       `json:"fast_burn"` // bad fraction / allowed fraction
	SlowBurn float64       `json:"slow_burn"`
	Count    uint64        `json:"count"` // ops observed in the slow window
	Breached bool          `json:"breached"`
}

// SLOStatus is a full evaluation pass.
type SLOStatus struct {
	Objectives []BurnStatus `json:"objectives"`
	Breaches   int          `json:"breaches"`
}

// matchVerbs expands one objective against the histograms present in a
// snapshot: exact name, or every name under a trailing-'*' prefix.
func matchVerbs(o Objective, s metrics.Snapshot) []string {
	if !strings.HasSuffix(o.Verb, "*") {
		return []string{o.Verb}
	}
	prefix := strings.TrimSuffix(o.Verb, "*")
	var out []string
	for _, h := range s.Histograms {
		if strings.HasPrefix(h.Name, prefix) {
			out = append(out, h.Name)
		}
	}
	return out
}

// burn converts a histogram view to (bad fraction, burn rate) against an
// objective. An empty histogram burns nothing.
func burn(h metrics.HistSnapshot, o Objective) (bad, rate float64) {
	if h.Count == 0 {
		return 0, 0
	}
	bad = float64(h.CountAbove(int64(o.Latency))) / float64(h.Count)
	allowed := 1 - o.Target
	if allowed <= 0 {
		allowed = 1e-9 // a 100% target means any bad op is a full burn
	}
	return bad, bad / allowed
}

// EvaluateSnapshots judges cfg against a fast-horizon and a slow-horizon
// merged snapshot. Pure: the same pair of snapshots always yields the
// same status, which is what lets the cluster scraper reuse it on merged
// remote windows.
func EvaluateSnapshots(cfg SLOConfig, fast, slow metrics.Snapshot) SLOStatus {
	cfg = cfg.withDefaults()
	var st SLOStatus
	for _, o := range cfg.Objectives {
		for _, verb := range matchVerbs(o, slow) {
			slowH := slow.Hist(verb)
			fastBad, fastBurn := burn(fast.Hist(verb), o)
			slowBad, slowBurn := burn(slowH, o)
			b := BurnStatus{
				Verb: verb, Latency: o.Latency, Target: o.Target,
				FastBad: fastBad, SlowBad: slowBad,
				FastBurn: fastBurn, SlowBurn: slowBurn,
				Count:    slowH.Count,
				Breached: fastBurn >= cfg.BurnThreshold && slowBurn >= cfg.BurnThreshold,
			}
			if b.Breached {
				st.Breaches++
			}
			st.Objectives = append(st.Objectives, b)
		}
	}
	return st
}

// SLO evaluates one config against one node's window ring, tracking
// breach transitions so hcl_slo_breaches counts state changes, not polls.
// A nil *SLO serves an empty status.
type SLO struct {
	cfg  SLOConfig
	win  *metrics.Windows
	node int

	mu       sync.Mutex
	breached map[string]bool
}

// NewSLO builds the evaluator for a node's ring. Breach transitions are
// recorded into the ring's collector under node.
func NewSLO(cfg SLOConfig, win *metrics.Windows, node int) *SLO {
	return &SLO{cfg: cfg.withDefaults(), win: win, node: node, breached: make(map[string]bool)}
}

// Config reports the evaluator's configuration (defaults filled).
func (s *SLO) Config() SLOConfig {
	if s == nil {
		return SLOConfig{}
	}
	return s.cfg
}

// Evaluate runs one pass over the current ring state and records any
// transitions into breach.
func (s *SLO) Evaluate() SLOStatus {
	if s == nil {
		return SLOStatus{}
	}
	st := EvaluateSnapshots(s.cfg, s.win.Merged(s.cfg.FastWindows), s.win.Merged(s.cfg.SlowWindows))
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range st.Objectives {
		if b.Breached && !s.breached[b.Verb] {
			if col := s.win.Collector(); col != nil {
				col.Add(metrics.SLOBreaches, s.node, s.lastEndNS(), 1)
			}
		}
		s.breached[b.Verb] = b.Breached
	}
	return st
}

// lastEndNS stamps breach counters with the newest window's close instant
// so they land in the right virtual-time bucket.
func (s *SLO) lastEndNS() int64 {
	if wins := s.win.Recent(1); len(wins) == 1 {
		return wins[0].EndNS
	}
	return 0
}
