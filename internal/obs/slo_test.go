package obs_test

import (
	"math"
	"testing"

	"hcl/internal/metrics"
	"hcl/internal/obs"
)

// snapWith builds a snapshot whose named histogram saw the given values.
func snapWith(name string, vals ...int64) metrics.Snapshot {
	col := metrics.New(1e6)
	for _, v := range vals {
		col.Observe(name, v)
	}
	return col.Snapshot()
}

func TestEvaluateSnapshotsBurnMath(t *testing.T) {
	// 10 ops, 1 over the 1000ns bound: bad fraction 0.1. Target 99% →
	// allowed 0.01 → burn 10, far over the default threshold of 2.
	vals := []int64{50, 50, 50, 50, 50, 50, 50, 50, 50, 50_000}
	s := snapWith("rpc.x", vals...)
	cfg := obs.SLOConfig{Objectives: []obs.Objective{{Verb: "rpc.x", Latency: 1000, Target: 0.99}}}

	st := obs.EvaluateSnapshots(cfg, s, s)
	if len(st.Objectives) != 1 {
		t.Fatalf("objectives: %+v", st.Objectives)
	}
	b := st.Objectives[0]
	if math.Abs(b.SlowBad-0.1) > 1e-9 || math.Abs(b.SlowBurn-10) > 1e-6 {
		t.Fatalf("burn math: %+v", b)
	}
	if !b.Breached || st.Breaches != 1 || b.Count != 10 {
		t.Fatalf("breach state: %+v", b)
	}

	// Same slow window but a quiet fast window: no breach — the fast
	// horizon gates transient history from paging.
	st = obs.EvaluateSnapshots(cfg, metrics.Snapshot{}, s)
	if st.Objectives[0].Breached || st.Breaches != 0 {
		t.Fatalf("quiet fast window still breached: %+v", st.Objectives[0])
	}

	// All ops within bound: zero burn.
	ok := snapWith("rpc.x", 50, 60, 70)
	st = obs.EvaluateSnapshots(cfg, ok, ok)
	if b := st.Objectives[0]; b.SlowBurn != 0 || b.Breached {
		t.Fatalf("healthy window burned: %+v", b)
	}
}

func TestEvaluatePrefixObjective(t *testing.T) {
	col := metrics.New(1e6)
	col.Observe("rpc.umap.m.insert", 50)
	col.Observe("rpc.umap.m.find", 50_000)
	col.Observe("exec.umap.m.insert", 50_000) // different prefix: not matched
	s := col.Snapshot()
	cfg := obs.SLOConfig{Objectives: []obs.Objective{{Verb: "rpc.umap.*", Latency: 1000, Target: 0.9}}}
	st := obs.EvaluateSnapshots(cfg, s, s)
	if len(st.Objectives) != 2 {
		t.Fatalf("prefix expanded to %d objectives: %+v", len(st.Objectives), st.Objectives)
	}
	byVerb := map[string]obs.BurnStatus{}
	for _, b := range st.Objectives {
		byVerb[b.Verb] = b
	}
	if byVerb["rpc.umap.m.insert"].Breached || !byVerb["rpc.umap.m.find"].Breached {
		t.Fatalf("per-verb verdicts: %+v", byVerb)
	}
}

func TestHundredPercentTarget(t *testing.T) {
	// Target 1.0 leaves no error budget: a single bad op must burn hot
	// rather than divide by zero.
	s := snapWith("rpc.x", 50, 50_000)
	cfg := obs.SLOConfig{Objectives: []obs.Objective{{Verb: "rpc.x", Latency: 1000, Target: 1.0}}}
	st := obs.EvaluateSnapshots(cfg, s, s)
	b := st.Objectives[0]
	if !b.Breached || math.IsInf(b.SlowBurn, 0) || math.IsNaN(b.SlowBurn) {
		t.Fatalf("100%% target: %+v", b)
	}
}

// TestSLOBreachTransitions: hcl_slo_breaches counts transitions into
// breach, not evaluation polls.
func TestSLOBreachTransitions(t *testing.T) {
	col := metrics.New(1e6)
	win := metrics.NewWindows(col, 16, 0)
	s := obs.NewSLO(obs.SLOConfig{
		Objectives:  []obs.Objective{{Verb: "rpc.x", Latency: 1000, Target: 0.5}},
		FastWindows: 2, SlowWindows: 4, BurnThreshold: 1.5,
	}, win, 3)

	// Healthy traffic.
	col.Observe("rpc.x", 50)
	win.Roll(1e9)
	if st := s.Evaluate(); st.Breaches != 0 {
		t.Fatalf("healthy breach: %+v", st)
	}
	// Everything over the bound: > 2x the 50% budget in both horizons.
	for i := 0; i < 4; i++ {
		col.Observe("rpc.x", 100_000)
	}
	win.Roll(2e9)
	if st := s.Evaluate(); st.Breaches != 1 {
		t.Fatalf("bad traffic not breached: %+v", st)
	}
	// Polling again while still breached must not re-count.
	s.Evaluate()
	s.Evaluate()
	if got := col.Total(metrics.SLOBreaches, 3); got != 1 {
		t.Fatalf("hcl_slo_breaches = %v after repeated polls, want 1", got)
	}
	// Recover, then breach again: a second transition.
	for i := 0; i < 64; i++ {
		col.Observe("rpc.x", 50)
	}
	win.Roll(3e9)
	win.Roll(4e9)
	if st := s.Evaluate(); st.Breaches != 0 {
		t.Fatalf("did not recover: %+v", st)
	}
	for i := 0; i < 256; i++ {
		col.Observe("rpc.x", 100_000)
	}
	win.Roll(5e9)
	win.Roll(6e9)
	s.Evaluate()
	if got := col.Total(metrics.SLOBreaches, 3); got != 2 {
		t.Fatalf("hcl_slo_breaches = %v after second transition, want 2", got)
	}
}

func TestNilSLO(t *testing.T) {
	var s *obs.SLO
	if st := s.Evaluate(); len(st.Objectives) != 0 || st.Breaches != 0 {
		t.Fatalf("nil SLO evaluated: %+v", st)
	}
	if cfg := s.Config(); len(cfg.Objectives) != 0 {
		t.Fatalf("nil SLO config: %+v", cfg)
	}
}
