package obs_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hcl/internal/fabric"
	"hcl/internal/metrics"
	"hcl/internal/obs"
	"hcl/internal/trace"
)

func TestFlightObserveError(t *testing.T) {
	col := metrics.New(1e6)
	extra := errors.New("layer: degraded")
	fr := obs.NewFlightRecorder(obs.FlightConfig{Node: 1, FaultErrors: []error{extra}}, col, nil, nil, nil)

	cases := []struct {
		err  error
		want bool
	}{
		{fabric.ErrNodeDown, true},
		{fmt.Errorf("op: %w", fabric.ErrTimeout), true}, // wrapped
		{extra, true}, // configured extra (core.ErrDegraded in practice)
		{errors.New("key not found"), false},
		{nil, false},
	}
	var faults int
	for _, c := range cases {
		if got := fr.ObserveError(100, "find", c.err); got != c.want {
			t.Fatalf("ObserveError(%v) = %v, want %v", c.err, got, c.want)
		}
		if c.want {
			faults++
		}
	}
	if got := col.Total(metrics.FlightFaults, 1); got != float64(faults) {
		t.Fatalf("hcl_flight_faults = %v, want %d", got, faults)
	}
	rec := fr.Peek()
	if len(rec.Events) != faults {
		t.Fatalf("event ring: %+v", rec.Events)
	}
	for _, e := range rec.Events {
		if e.Kind != "fault" {
			t.Fatalf("event kind: %+v", e)
		}
	}
}

func TestFlightEventRingBounded(t *testing.T) {
	fr := obs.NewFlightRecorder(obs.FlightConfig{Events: 4}, nil, nil, nil, nil)
	for i := 0; i < 10; i++ {
		fr.Note(int64(i), "chaos", fmt.Sprintf("event-%d", i))
	}
	rec := fr.Peek()
	if len(rec.Events) != 4 {
		t.Fatalf("retained %d events, want 4", len(rec.Events))
	}
	if rec.Events[0].Detail != "event-6" || rec.Events[3].Detail != "event-9" {
		t.Fatalf("retained wrong events: %+v", rec.Events)
	}
}

func TestFlightDumpArtifact(t *testing.T) {
	dir := t.TempDir()
	col := metrics.New(1e6)
	tr := trace.New(64)
	win := metrics.NewWindows(col, 8, 0)
	fr := obs.NewFlightRecorder(obs.FlightConfig{Dir: dir, Windows: 4}, col, tr, win, nil)

	col.Observe("rpc.x", 500)
	col.Add(metrics.RemoteInvokes, 0, 0, 3)
	win.Roll(1e9)
	tr.Record(trace.Span{TraceID: 9, ID: 1, Name: "rpc", Verb: "x", Start: 10, End: 20})
	fr.Note(15, "chaos", "KillNode(1) @op 42")

	rec, path, err := fr.Dump("checker", 2e9)
	if err != nil {
		t.Fatal(err)
	}
	if path == "" || !strings.HasSuffix(path, "flight-001-checker.json") {
		t.Fatalf("artifact path: %q", path)
	}
	if rec.Reason != "checker" || rec.AtNS != 2e9 {
		t.Fatalf("record header: %+v", rec)
	}
	// The file round-trips to an identical-shape record with spans,
	// events, windows, and the cumulative snapshot.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back obs.FlightRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(back.Events) != 1 || back.Events[0].Detail != "KillNode(1) @op 42" {
		t.Fatalf("artifact events: %+v", back.Events)
	}
	if len(back.Spans) != 1 || back.Spans[0].Verb != "x" {
		t.Fatalf("artifact spans: %+v", back.Spans)
	}
	if len(back.Windows) != 1 || back.Windows[0].Delta.Total(metrics.RemoteInvokes, 0) != 3 {
		t.Fatalf("artifact windows: %+v", back.Windows)
	}
	if back.Metrics.Hist("rpc.x").Count != 1 {
		t.Fatalf("artifact metrics: %+v", back.Metrics)
	}
	if got := col.Total(metrics.FlightDumps, 0); got != 1 {
		t.Fatalf("hcl_flight_dumps = %v", got)
	}
	if files := fr.Files(); len(files) != 1 || files[0] != path {
		t.Fatalf("Files() = %v", files)
	}
}

func TestFlightDumpBudget(t *testing.T) {
	dir := t.TempDir()
	fr := obs.NewFlightRecorder(obs.FlightConfig{Dir: dir, MaxDumps: 2}, nil, nil, nil, nil)
	var written int
	for i := 0; i < 5; i++ {
		_, path, err := fr.Dump("fault", int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if path != "" {
			written++
		}
	}
	if written != 2 {
		t.Fatalf("wrote %d artifacts, want MaxDumps=2", written)
	}
	ents, err := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if err != nil || len(ents) != 2 {
		t.Fatalf("on disk: %v, %v", ents, err)
	}
}

func TestFlightReasonSanitized(t *testing.T) {
	dir := t.TempDir()
	fr := obs.NewFlightRecorder(obs.FlightConfig{Dir: dir}, nil, nil, nil, nil)
	_, path, err := fr.Dump("SLO breach: rpc.umap/insert (node 3)", 0)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(path)
	if strings.ContainsAny(base, "/: ()") || !strings.HasPrefix(base, "flight-001-slo-breach") {
		t.Fatalf("unsanitized artifact name: %q", base)
	}
}

func TestNilFlightRecorder(t *testing.T) {
	var fr *obs.FlightRecorder
	fr.Note(0, "x", "y")
	if fr.ObserveError(0, "op", fabric.ErrNodeDown) {
		t.Fatal("nil recorder observed a fault")
	}
	if _, path, err := fr.Dump("x", 0); err != nil || path != "" {
		t.Fatalf("nil Dump: %q %v", path, err)
	}
	if fr.Files() != nil {
		t.Fatal("nil Files")
	}
}
