package obs_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"hcl/internal/cluster"
	"hcl/internal/core"
	"hcl/internal/fabric"
	"hcl/internal/fabric/faultfab"
	"hcl/internal/fabric/simfab"
	"hcl/internal/metrics"
	"hcl/internal/obs"
	"hcl/internal/trace"
)

// get issues one request against a handler and decodes the JSON body.
func get(t *testing.T, h http.Handler, path string, out any) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s: decode: %v\n%s", path, err, rec.Body.String())
		}
	}
	return rec
}

// TestNilOptionsServeEmpty pins the package contract: a handler whose
// Options are entirely nil serves empty data on every endpoint, never a
// panic or a 500 — one handler shape fits every node.
func TestNilOptionsServeEmpty(t *testing.T) {
	h := obs.NewHandler(obs.Options{})
	for _, path := range []string{
		"/metrics", "/metrics/windows", "/traces?max=5",
		"/slo", "/cluster/metrics", "/cluster/slo", "/flight",
	} {
		var v any
		if rec := get(t, h, path, &v); rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, rec.Code, rec.Body.String())
		}
	}
	if rec := get(t, h, "/traces/tree?trace=7", nil); rec.Code != http.StatusOK {
		t.Fatalf("tree of unknown trace: status %d", rec.Code)
	}
}

// TestTracesTreeBadInput: a missing or non-decimal trace id is a 400,
// not a served-empty 200 — the caller's query is malformed.
func TestTracesTreeBadInput(t *testing.T) {
	h := obs.Handler(nil, trace.New(16))
	for _, q := range []string{"", "?trace=", "?trace=abc", "?trace=-1", "?trace=1e9"} {
		if rec := get(t, h, "/traces/tree"+q, nil); rec.Code != http.StatusBadRequest {
			t.Fatalf("/traces/tree%s: status %d, want 400", q, rec.Code)
		}
	}
}

// TestTracesMaxClamped: negative and absurd ?max= values clamp into
// [1, ring capacity] instead of dumping the whole ring or promising more
// than it holds.
func TestTracesMaxClamped(t *testing.T) {
	tr := trace.New(16)
	for i := 0; i < 10; i++ {
		tr.Record(trace.Span{TraceID: 1, ID: tr.NewID(), Name: "rpc", Start: int64(i), End: int64(i + 1)})
	}
	h := obs.Handler(nil, tr)
	cases := []struct {
		q    string
		want int
	}{
		{"?max=-5", 1},
		{"?max=0", 1},
		{"?max=3", 3},
		{"?max=999999", 10}, // clamped to capacity, ring holds 10
		{"", 10},            // default 256, clamped to capacity
	}
	for _, c := range cases {
		var spans []trace.Span
		get(t, h, "/traces"+c.q, &spans)
		if len(spans) != c.want {
			t.Fatalf("/traces%s served %d spans, want %d", c.q, len(spans), c.want)
		}
	}
}

// TestEndpointsRoundTrip: the windowed, SLO, and flight endpoints serve
// decodable views of live state.
func TestEndpointsRoundTrip(t *testing.T) {
	col := metrics.New(1e6)
	tr := trace.New(64)
	win := metrics.NewWindows(col, 8, 0)
	col.Observe("rpc.x", 500)
	col.Add(metrics.RemoteInvokes, 0, 0, 1)
	win.Roll(1e9)
	slo := obs.NewSLO(obs.SLOConfig{
		Objectives: []obs.Objective{{Verb: "rpc.x", Latency: 1000, Target: 0.5}},
	}, win, 0)
	fr := obs.NewFlightRecorder(obs.FlightConfig{}, col, tr, win, slo)
	fr.Note(10, "chaos", "kill node 1")
	h := obs.NewHandler(obs.Options{Collector: col, Tracer: tr, Windows: win, SLO: slo, Recorder: fr})

	var wins []metrics.WindowSnapshot
	get(t, h, "/metrics/windows?last=4", &wins)
	if len(wins) != 1 || wins[0].Delta.Total(metrics.RemoteInvokes, 0) != 1 {
		t.Fatalf("windows endpoint: %+v", wins)
	}
	var st obs.SLOStatus
	get(t, h, "/slo", &st)
	if len(st.Objectives) != 1 || st.Objectives[0].Verb != "rpc.x" || st.Breaches != 0 {
		t.Fatalf("slo endpoint: %+v", st)
	}
	var rec obs.FlightRecord
	get(t, h, "/flight", &rec)
	if len(rec.Events) != 1 || rec.Events[0].Detail != "kill node 1" {
		t.Fatalf("flight endpoint events: %+v", rec.Events)
	}
	if rec.Metrics.Hist("rpc.x").Count != 1 {
		t.Fatalf("flight endpoint metrics: %+v", rec.Metrics)
	}
}

// TestClusterScrapeSim: the fabric-scraped aggregation over an 8-node
// simulated fabric. All in-process nodes share one collector, so the
// merge must fold exactly one copy (source dedup) — the merged per-verb
// totals equal the collector's own snapshot, not 8x it.
func TestClusterScrapeSim(t *testing.T) {
	const nodes = 8
	col := metrics.New(1e6)
	prov := simfab.New(nodes, fabric.DefaultCostModel(), simfab.WithCollector(col))
	defer prov.Close()
	w := cluster.MustWorld(prov, cluster.Block(nodes, nodes))
	rt := core.NewRuntime(w)
	m, err := core.NewUnorderedMap[string, int](rt, "sc")
	if err != nil {
		t.Fatal(err)
	}
	w.Run(func(r *cluster.Rank) {
		for i := 0; i < 4; i++ {
			if _, err := m.Insert(r, fmt.Sprintf("r%d-k%d", r.ID(), i), i); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	win := metrics.NewWindows(col, 8, 0)
	win.Roll(1e9)
	pre := col.Snapshot()

	c := rt.EnableClusterObs(0, win)
	view := c.Scrape()
	if view.Nodes != nodes || view.Scraped != nodes {
		t.Fatalf("scraped %d/%d nodes, errors=%v", view.Scraped, view.Nodes, view.Errors)
	}
	if view.Sources != 1 {
		t.Fatalf("sources = %d, want 1 (shared collector must dedupe)", view.Sources)
	}
	// Per-verb totals: exactly the shared collector's counts, not 8x.
	wantRPC := pre.Hist("rpc.umap.sc.insert").Count
	wantLocal := pre.Hist("local.umap.sc.insert").Count
	if wantRPC+wantLocal != nodes*4 {
		t.Fatalf("workload shape: rpc=%d local=%d", wantRPC, wantLocal)
	}
	if got := view.Merged.Hist("rpc.umap.sc.insert").Count; got != wantRPC {
		t.Fatalf("merged rpc count = %d, want %d", got, wantRPC)
	}
	if got := view.Merged.Total(metrics.RemoteInvokes, -1); got != pre.Total(metrics.RemoteInvokes, -1) {
		t.Fatalf("merged invokes = %v, want %v", got, pre.Total(metrics.RemoteInvokes, -1))
	}
	// Scrapes themselves were counted.
	if got := col.Total(metrics.ObsScrapes, 0); got != nodes {
		t.Fatalf("hcl_obs_scrapes = %v, want %v", got, float64(nodes))
	}
	// A second scrape still works (serialized caller, monotonic clock).
	if v2 := c.Scrape(); v2.Scraped != nodes || v2.Sources != 1 {
		t.Fatalf("second scrape: %+v", v2)
	}
}

// TestClusterScrapeDeadNode: a down node surfaces as an error entry and
// the rest of the cluster still merges.
func TestClusterScrapeDeadNode(t *testing.T) {
	col := metrics.New(1e6)
	inner := simfab.New(3, fabric.DefaultCostModel(), simfab.WithCollector(col))
	prov := faultfab.New(inner, faultfab.Config{})
	defer prov.Close()
	w := cluster.MustWorld(prov, cluster.Block(3, 3))
	rt := core.NewRuntime(w)
	win := metrics.NewWindows(col, 4, 0)
	c := rt.EnableClusterObs(0, win)

	// Unbinding the verb is not enough (shared engine); kill the node.
	prov.SetDown(2, true)
	view := c.Scrape()
	if view.Scraped != 2 || len(view.Errors) != 1 || view.Errors[2] == "" {
		t.Fatalf("dead-node view: scraped=%d errors=%v", view.Scraped, view.Errors)
	}
}
