// Package obs is the runtime introspection surface: a small HTTP handler
// exposing a node's metrics snapshot and recent trace spans as JSON, plus
// a human-readable span-tree view. tcpfab nodes serve it when configured
// with a DebugAddr; hcl-bench uses the same snapshot encoding for its
// dump files, so the wire and the file formats never drift apart.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"

	"hcl/internal/metrics"
	"hcl/internal/trace"
)

// Handler serves the introspection endpoints:
//
//	GET /metrics              metrics.Snapshot as JSON
//	GET /traces?max=N         the N most recent spans as JSON (default 256)
//	GET /traces/tree?trace=ID one trace rendered as an indented tree (text)
//
// Either argument may be nil; the matching endpoints then serve empty
// data rather than erroring, so one handler shape fits every node.
func Handler(col *metrics.Collector, tr *trace.Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, col.Snapshot())
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		max := 256
		if s := r.URL.Query().Get("max"); s != "" {
			if n, err := strconv.Atoi(s); err == nil {
				max = n
			}
		}
		spans := tr.Recent(max)
		if spans == nil {
			spans = []trace.Span{}
		}
		writeJSON(w, spans)
	})
	mux.HandleFunc("/traces/tree", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.URL.Query().Get("trace"), 10, 64)
		if err != nil {
			http.Error(w, "trace: want a decimal trace id", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, trace.TreeString(tr.Spans(id)))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Server is a running debug listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the introspection listener on addr (":0" picks a port;
// read it back with Addr).
func Serve(addr string, col *metrics.Collector, tr *trace.Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(col, tr)}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr reports the listener's resolved address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
