// Package obs is the cluster observability plane: a per-node HTTP
// introspection surface (metrics snapshot, windowed deltas, recent trace
// spans, span trees), a declarative SLO burn-rate engine evaluated over
// those windows, a fabric-scraped aggregation verb that merges every
// peer's snapshot into one cluster view, and a fault-triggered flight
// recorder that dumps a black-box postmortem artifact. tcpfab nodes serve
// the HTTP surface when configured with a DebugAddr; hcl-bench uses the
// same snapshot encoding for its dump files, so the wire and the file
// formats never drift apart.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"

	"hcl/internal/metrics"
	"hcl/internal/trace"
)

// Options selects what a debug handler serves. Every field may be nil;
// the matching endpoints then serve empty data rather than erroring, so
// one handler shape fits every node.
type Options struct {
	Collector *metrics.Collector
	Tracer    *trace.Tracer
	Windows   *metrics.Windows // enables /metrics/windows
	SLO       *SLO             // enables /slo (and supplies /cluster/slo its config)
	Cluster   *Cluster         // enables /cluster/metrics and /cluster/slo
	Recorder  *FlightRecorder  // enables /flight
}

// Handler serves the single-node introspection endpoints:
//
//	GET /metrics              metrics.Snapshot as JSON
//	GET /traces?max=N         the N most recent spans as JSON (default 256)
//	GET /traces/tree?trace=ID one trace rendered as an indented tree (text)
//
// Kept as the two-argument form most nodes need; NewHandler is the full
// surface.
func Handler(col *metrics.Collector, tr *trace.Tracer) http.Handler {
	return NewHandler(Options{Collector: col, Tracer: tr})
}

// NewHandler serves every endpoint its Options enable:
//
//	GET /metrics                 metrics.Snapshot as JSON
//	GET /metrics/windows?last=K  the K most recent windowed deltas (default all)
//	GET /traces?max=N            recent spans, N clamped to [1, ring capacity]
//	GET /traces/tree?trace=ID    one trace as an indented tree (text)
//	GET /slo                     SLO burn-rate status for this node
//	GET /cluster/metrics         fabric-scraped, merged cluster view
//	GET /cluster/slo             SLO status evaluated over the cluster view
//	GET /flight                  the flight recorder's current in-memory record
func NewHandler(o Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, o.Collector.Snapshot())
	})
	mux.HandleFunc("/metrics/windows", func(w http.ResponseWriter, r *http.Request) {
		last := 0 // all retained
		if s := r.URL.Query().Get("last"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n > 0 {
				last = n
			}
		}
		wins := o.Windows.Recent(last)
		if wins == nil {
			wins = []metrics.WindowSnapshot{}
		}
		writeJSON(w, wins)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		// Clamp the span budget: a negative or zero max would ask
		// Recent for "everything retained", and an absurd max would
		// promise more than the ring can hold. [1, capacity] is the
		// honest range (capacity 0 when no tracer is wired).
		max := 256
		if s := r.URL.Query().Get("max"); s != "" {
			if n, err := strconv.Atoi(s); err == nil {
				max = n
			}
		}
		if max < 1 {
			max = 1
		}
		if cap := o.Tracer.Capacity(); max > cap {
			max = cap
		}
		spans := o.Tracer.Recent(max)
		if spans == nil {
			spans = []trace.Span{}
		}
		writeJSON(w, spans)
	})
	mux.HandleFunc("/traces/tree", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.URL.Query().Get("trace"), 10, 64)
		if err != nil {
			http.Error(w, "trace: want a decimal trace id", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, trace.TreeString(o.Tracer.Spans(id)))
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, o.SLO.Evaluate())
	})
	mux.HandleFunc("/cluster/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, o.Cluster.Scrape())
	})
	mux.HandleFunc("/cluster/slo", func(w http.ResponseWriter, r *http.Request) {
		var cfg SLOConfig
		if o.SLO != nil {
			cfg = o.SLO.Config()
		}
		writeJSON(w, o.Cluster.EvaluateSLO(cfg))
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, o.Recorder.Peek())
	})
	return mux
}

// writeJSON marshals first and writes after, so an encoding failure
// becomes a 500 instead of a half-written 200. A network write error
// after that is the client hanging up — nothing actionable remains.
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, fmt.Sprintf("obs: encode: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(data, '\n'))
}

// Server is a running debug listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the introspection listener on addr (":0" picks a port;
// read it back with Addr).
func Serve(addr string, col *metrics.Collector, tr *trace.Tracer) (*Server, error) {
	return ServeOpts(addr, Options{Collector: col, Tracer: tr})
}

// ServeOpts starts a listener serving the full endpoint surface o enables.
func ServeOpts(addr string, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: NewHandler(o)}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr reports the listener's resolved address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
