// Fabric-scraped cluster aggregation: a small obs verb bound into the RoR
// engine lets any node pull every peer's metrics snapshot and windowed
// deltas over whatever transport the cluster already runs on — simfab,
// tcpfab, or shmfab — and merge them into one cluster-wide view. No side
// channel, no second port: the scrape is an ordinary invocation, so it
// inherits the transport's deadlines, retries, and fault surface
// (a down node shows up as an error entry, not a hang).
//
// Merging has one trap: on simfab every in-process node shares ONE
// collector, so summing per-node replies would multiply every counter by
// the node count. Each reply therefore carries a process-wide source id
// minted per collector; the merge folds one reply per distinct source.
// On tcpfab/shmfab each process has its own collector (distinct sources,
// all replies merge); on simfab all replies share a source and exactly
// one is folded — per-node attribution still works because the shared
// collector's totals carry the node in each TotalPoint.
package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"hcl/internal/fabric"
	"hcl/internal/metrics"
	"hcl/internal/ror"
)

// ScrapeFn is the invocation-registry name of the scrape verb.
const ScrapeFn = "obs.scrape"

// scrapeCost is the modelled NIC-core cost of serving one scrape, in
// virtual nanoseconds: snapshot assembly plus JSON encoding. Tiny next to
// any workload, but nonzero so scrapes are visible in busy-time series.
const scrapeCost = 2000

// sourceIDs mints one process-wide id per collector, so scrape replies
// from nodes sharing a collector (simfab) are deduplicatable.
var (
	sourceIDs  sync.Map // *metrics.Collector -> uint64
	sourceNext atomic.Uint64
)

func sourceID(col *metrics.Collector) uint64 {
	if col == nil {
		return 0
	}
	if v, ok := sourceIDs.Load(col); ok {
		return v.(uint64)
	}
	v, _ := sourceIDs.LoadOrStore(col, sourceNext.Add(1))
	return v.(uint64)
}

// ScrapeReply is one node's answer to the scrape verb.
type ScrapeReply struct {
	Source   uint64                   `json:"source"` // collector identity for dedup
	Node     int                      `json:"node"`
	Snapshot metrics.Snapshot         `json:"snapshot"`
	Windows  []metrics.WindowSnapshot `json:"windows,omitempty"`
}

// BindScrape binds the scrape verb on e, serving col's cumulative
// snapshot and win's retained windows (win may be nil: snapshot only).
// Call once per engine, whatever col that engine's process observes.
func BindScrape(e *ror.Engine, col *metrics.Collector, win *metrics.Windows) {
	e.Bind(ScrapeFn, func(node int, arg []byte) ([]byte, int64) {
		rep := ScrapeReply{
			Source:   sourceID(col),
			Node:     node,
			Snapshot: col.Snapshot(),
			Windows:  win.Recent(0),
		}
		b, err := json.Marshal(rep)
		if err != nil {
			// The reply types marshal unconditionally; this is a
			// can't-happen guard that still fails loudly downstream.
			return []byte("{}"), scrapeCost
		}
		return b, scrapeCost
	})
}

// ClusterView is the merged result of scraping every node.
type ClusterView struct {
	Nodes      int              `json:"nodes"`   // fabric size
	Scraped    int              `json:"scraped"` // replies received (local included)
	Sources    int              `json:"sources"` // distinct collectors merged
	Errors     map[int]string   `json:"errors,omitempty"`
	PerNode    []ScrapeReply    `json:"per_node"`
	Merged     metrics.Snapshot `json:"merged"`
	MergeError string           `json:"merge_error,omitempty"`
}

// scrapeCaller is the synthetic invocation origin scrapes travel under:
// a rank-less ref pinned to the scraping node, with its own clock so
// scrape traffic never perturbs a workload rank's virtual time.
type scrapeCaller struct {
	ref  fabric.RankRef
	clk  *fabric.Clock
	opts fabric.Options
}

func (c *scrapeCaller) Ref() fabric.RankRef       { return c.ref }
func (c *scrapeCaller) Clock() *fabric.Clock      { return c.clk }
func (c *scrapeCaller) OpOptions() fabric.Options { return c.opts }

// Cluster scrapes the fabric a ror.Engine runs on and merges the replies.
// One Cluster serves any number of Scrape calls; calls are serialized
// (the synthetic caller owns one clock). A nil *Cluster serves an empty
// view.
type Cluster struct {
	eng  *ror.Engine
	node int
	col  *metrics.Collector
	win  *metrics.Windows

	mu     sync.Mutex
	caller *scrapeCaller
}

// EnableCluster binds the scrape verb on e (serving col/win, the local
// process's view) and returns a scraper originating at node. The
// engine-side bind and the scraper come as one unit so every node that
// can scrape can also be scraped.
func EnableCluster(e *ror.Engine, node int, col *metrics.Collector, win *metrics.Windows) *Cluster {
	BindScrape(e, col, win)
	return &Cluster{
		eng: e, node: node, col: col, win: win,
		caller: &scrapeCaller{
			ref: fabric.RankRef{Rank: -1, Node: node},
			clk: fabric.NewClock(0),
		},
	}
}

// SetOptions installs per-scrape fabric options (deadline, attempt
// budget) so a dead peer bounds the scrape instead of stalling it.
func (c *Cluster) SetOptions(o fabric.Options) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.caller.opts = o
	c.mu.Unlock()
}

// Scrape pulls every node's reply — the local node answered directly,
// remote nodes over the fabric — dedupes by source, and merges.
func (c *Cluster) Scrape() ClusterView {
	if c == nil {
		return ClusterView{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.eng.Provider().NumNodes()
	view := ClusterView{Nodes: n, PerNode: make([]ScrapeReply, 0, n)}
	for node := 0; node < n; node++ {
		if node == c.node {
			view.PerNode = append(view.PerNode, ScrapeReply{
				Source:   sourceID(c.col),
				Node:     node,
				Snapshot: c.col.Snapshot(),
				Windows:  c.win.Recent(0),
			})
			continue
		}
		raw, err := c.eng.Invoke(c.caller, node, ScrapeFn, nil)
		if err != nil {
			if view.Errors == nil {
				view.Errors = make(map[int]string)
			}
			view.Errors[node] = err.Error()
			continue
		}
		var rep ScrapeReply
		if err := json.Unmarshal(raw, &rep); err != nil {
			if view.Errors == nil {
				view.Errors = make(map[int]string)
			}
			view.Errors[node] = fmt.Sprintf("obs: bad scrape reply: %v", err)
			continue
		}
		rep.Node = node
		view.PerNode = append(view.PerNode, rep)
	}
	view.Scraped = len(view.PerNode)
	if c.col != nil {
		c.col.Add(metrics.ObsScrapes, c.node, c.caller.clk.Now(), float64(view.Scraped))
	}

	snaps := make([]metrics.Snapshot, 0, len(view.PerNode))
	for _, rep := range dedupeBySource(view.PerNode) {
		snaps = append(snaps, rep.Snapshot)
	}
	view.Sources = len(snaps)
	merged, err := metrics.MergeSnapshots(snaps...)
	if err != nil {
		view.MergeError = err.Error()
		return view
	}
	view.Merged = merged
	return view
}

// dedupeBySource keeps the first reply per distinct source id, preserving
// node order. Source 0 (a node with no collector) never carries data and
// is dropped entirely.
func dedupeBySource(reps []ScrapeReply) []ScrapeReply {
	seen := make(map[uint64]bool, len(reps))
	out := reps[:0:0]
	for _, rep := range reps {
		if rep.Source == 0 || seen[rep.Source] {
			continue
		}
		seen[rep.Source] = true
		out = append(out, rep)
	}
	return out
}

// EvaluateSLO scrapes the cluster and judges cfg against the merged
// fast/slow window horizons across all distinct sources — the same pure
// evaluation a single node runs, fed cluster-wide windows.
func (c *Cluster) EvaluateSLO(cfg SLOConfig) SLOStatus {
	if c == nil {
		return SLOStatus{}
	}
	cfg = cfg.withDefaults()
	view := c.Scrape()
	fast := make([]metrics.Snapshot, 0, len(view.PerNode))
	slow := make([]metrics.Snapshot, 0, len(view.PerNode))
	for _, rep := range dedupeBySource(view.PerNode) {
		fast = append(fast, metrics.MergeWindows(rep.Windows, cfg.FastWindows))
		slow = append(slow, metrics.MergeWindows(rep.Windows, cfg.SlowWindows))
	}
	fastM, _ := metrics.MergeSnapshots(fast...)
	slowM, _ := metrics.MergeSnapshots(slow...)
	return EvaluateSnapshots(cfg, fastM, slowM)
}
