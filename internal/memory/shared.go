package memory

import (
	"sync"
	"unsafe"
)

// NewSharedSegment opens the file at path as a shared memory-mapped
// segment, attach-or-create: a missing file is created at size bytes, an
// existing file keeps its contents and the segment extent is
// max(existing size, size). This is the opener for regions more than one
// party maps — the shm fabric's rendezvous arena, and reopened
// persistence journals, where NewPersistentSegment's truncate-to-size
// would destroy whatever a previous incarnation (or a co-located
// process) already wrote.
//
// On platforms with mmap the mapping is MAP_SHARED, so every process
// mapping the same path sees the same physical pages: bulk writes become
// visible to other mappings without any flush, and 8-byte word atomics
// are atomic across processes (they compile to ordinary aligned
// LOCK-prefixed/LL-SC instructions on the shared page). Note that the
// stripe write-locks are per-*Segment* state: two Segment instances over
// one file do not exclude each other's bulk writes, so cross-mapping
// readers need a validation discipline (checksums) exactly as RDMA
// readers do.
func NewSharedSegment(path string, size int, mode SyncMode) (*Segment, error) {
	b, words, bytes, err := openSharedBacking(path, roundUp8(size))
	if err != nil {
		return nil, err
	}
	return &Segment{
		stripes: make([]sync.RWMutex, stripeCount(len(bytes))),
		words:   words,
		bytes:   bytes,
		back:    b,
		mode:    mode,
	}, nil
}

// NewMappedSegment wraps an existing 8-byte-aligned byte region (for
// example a sub-range of a larger shared mapping) as a volatile segment
// view. The region's lifetime is the caller's concern: Close does not
// unmap it, Sync is a no-op, and Grow falls back to a private heap copy
// (callers carving fixed-size regions never grow them).
func NewMappedSegment(data []byte) *Segment {
	if uintptr(unsafe.Pointer(&data[0]))%8 != 0 {
		panic("memory: NewMappedSegment region must be 8-byte aligned")
	}
	n := len(data) &^ 7
	words := unsafe.Slice((*uint64)(unsafe.Pointer(&data[0])), n/8)
	s := &Segment{words: words, bytes: data[:n]}
	s.growStripes()
	return s
}
