package memory

import (
	"path/filepath"
	"sync"
	"testing"
)

// Concurrent bulk writers on disjoint ranges with concurrent readers: the
// segment must never corrupt neighbouring ranges (this is the access
// pattern of BCL clients writing their reserved buckets).
func TestSegmentConcurrentDisjointWriters(t *testing.T) {
	const workers, slot = 8, 512
	s := NewSegment(workers * slot)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, slot)
			for i := range buf {
				buf[i] = byte(w)
			}
			for iter := 0; iter < 200; iter++ {
				if err := s.WriteAt(w*slot, buf); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got := make([]byte, slot)
	for w := 0; w < workers; w++ {
		if err := s.ReadAt(w*slot, got); err != nil {
			t.Fatal(err)
		}
		for i, b := range got {
			if b != byte(w) {
				t.Fatalf("slot %d byte %d = %d, want %d", w, i, b, w)
			}
		}
	}
}

// Bulk reads racing word atomics and bulk writes on the same region —
// the BCL bucket protocol's access pattern (Find bulk-reads a header
// whose state word a concurrent Insert CASes, then bulk-writes). The
// stripe locks must keep this clean under the race detector while each
// reader still observes a coherent per-stripe snapshot.
func TestSegmentBulkReadVsAtomicsAndWrites(t *testing.T) {
	s := NewSegment(1 << 10)
	const hdr = 24 // state word + 16 payload bytes, as bcl buckets lay out
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := make([]byte, hdr-8)
			for i := range payload {
				payload[i] = byte(w + 1)
			}
			for iter := 0; iter < 400; iter++ {
				if _, ok := s.CAS64(0, 0, uint64(w+1)); ok {
					if err := s.WriteAt(8, payload); err != nil {
						t.Errorf("write: %v", err)
						return
					}
					s.Store64(0, 0)
				}
			}
		}(w)
	}
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		buf := make([]byte, hdr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.ReadAt(0, buf); err != nil {
				t.Errorf("read: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
}

// Growing under concurrent readers must never fault or lose data.
func TestSegmentGrowUnderConcurrentReads(t *testing.T) {
	s := NewSegment(1 << 10)
	if err := s.WriteAt(0, []byte("stable prefix")); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 13)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.ReadAt(0, buf); err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if string(buf) != "stable prefix" {
					t.Errorf("read %q", buf)
					return
				}
			}
		}()
	}
	for size := 1 << 11; size <= 1<<16; size <<= 1 {
		if err := s.Grow(size); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestPersistentSegmentConcurrentAtomics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "atomic.bin")
	s, err := NewPersistentSegment(path, 64, SyncRelaxed)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Add64(8, 1)
			}
		}()
	}
	wg.Wait()
	if got := s.Load64(8); got != workers*per {
		t.Fatalf("counter = %d", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The final value must be durable.
	s2, err := NewPersistentSegment(path, 64, SyncRelaxed)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Load64(8); got != workers*per {
		t.Fatalf("durable counter = %d", got)
	}
}

func TestSegmentEagerSyncEveryWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eager.bin")
	s, err := NewPersistentSegment(path, 256, SyncEager)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.WriteAt(i*8, []byte("12345678")); err != nil {
			t.Fatalf("eager write %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
