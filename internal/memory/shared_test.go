package memory

import (
	"path/filepath"
	"testing"
	"unsafe"
)

// Attach-or-create: contents survive a reopen, the extent never shrinks,
// and a smaller requested size attaches at the existing (larger) extent.
func TestSharedSegmentAttachPreserves(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.shm")

	s, err := NewSharedSegment(path, 1<<16, SyncRelaxed)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Grow(1 << 18); err != nil {
		t.Fatal(err)
	}
	tailOff := 1<<18 - 8
	if err := s.PutUint64(tailOff, 0xfeedface); err != nil {
		t.Fatal(err)
	}
	if err := s.PutUint64(0, 42); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen asking for the small initial size: must attach at 256 KiB
	// with both words intact.
	s2, err := NewSharedSegment(path, 1<<16, SyncRelaxed)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 1<<18 {
		t.Fatalf("reopened extent %d, want %d", got, 1<<18)
	}
	if v, _ := s2.GetUint64(0); v != 42 {
		t.Fatalf("head word %d, want 42", v)
	}
	if v, _ := s2.GetUint64(tailOff); v != 0xfeedface {
		t.Fatalf("tail word %#x, want 0xfeedface", v)
	}
}

// Two Segment instances over one path observe each other's writes and
// word atomics (the cross-mapping coherence the shm fabric relies on).
func TestSharedSegmentCrossMappingVisibility(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.shm")
	a, err := NewSharedSegment(path, 4096, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewSharedSegment(path, 4096, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.WriteAt(128, []byte("hello shm")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 9)
	if err := b.ReadAt(128, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello shm" {
		t.Fatalf("cross-mapping read %q", buf)
	}
	a.Store64(8, 7)
	if got := b.Add64(8, 3); got != 10 {
		t.Fatalf("cross-mapping Add64 = %d, want 10", got)
	}
}

func TestMappedSegmentView(t *testing.T) {
	backing := make([]uint64, 64) // 8-aligned by construction
	region := unsafe.Slice((*byte)(unsafe.Pointer(&backing[0])), len(backing)*8)
	s := NewMappedSegment(region)
	if s.Len() != 512 {
		t.Fatalf("len %d", s.Len())
	}
	if err := s.WriteAt(16, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if err := s.ReadAt(16, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("read back %q", got)
	}
	// The view writes through to the underlying region.
	if backing[2]&0xff != 'a' {
		t.Fatalf("underlying word %#x", backing[2])
	}
	s.Store64(0, 99)
	if backing[0] != 99 {
		t.Fatalf("atomic store not visible: %d", backing[0])
	}
}
