// Package memory implements registered memory segments: the byte regions
// that back every distributed container partition. Segments support the
// access modes RDMA hardware offers — bulk byte reads/writes plus atomic
// 8-byte compare-and-swap — and can optionally be backed by a memory-mapped
// file, giving the paper's DataBox persistency (Section III-C6): a unified
// memory/storage address space where the kernel flushes dirty pages to an
// NVMe-class device.
package memory

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Errors returned by segment operations.
var (
	ErrOutOfBounds = errors.New("memory: access out of bounds")
	ErrMisaligned  = errors.New("memory: atomic access must be 8-byte aligned")
	ErrClosed      = errors.New("memory: segment closed")
)

// SyncMode controls when a persistent segment flushes to its backing file.
type SyncMode int

const (
	// SyncNone never flushes (volatile segment).
	SyncNone SyncMode = iota
	// SyncRelaxed flushes only on explicit Sync calls or Close (the
	// paper's "relaxed" background synchronization).
	SyncRelaxed
	// SyncEager flushes after every bulk write (per-operation
	// synchronization, the paper's default durable mode).
	SyncEager
)

// Segment is a registered memory region. All methods are safe for
// concurrent use, with the concurrency discipline of real RDMA NICs:
//
//   - Word atomics (CAS64/Store64/Add64/Load64) are lock-free and
//     linearizable with each other and with bulk reads.
//   - Bulk writes are striped by address: each 4 KiB stripe has its own
//     reader/writer lock; a write holds the stripes covering its range
//     exclusively, a bulk read holds them shared. Disjoint transfers
//     proceed in parallel, and a read overlapping a concurrent write
//     observes each stripe entirely before or entirely after it.
//   - Bulk reads load word-by-word with atomic loads, so they coexist
//     with concurrent word atomics at 8-byte granularity.
//
// The one undefined combination — a bulk *write* racing a word atomic
// on the very same word — is undefined on the hardware too; protocols
// built here (BCL-style state words) keep atomic words disjoint from
// bulk-written payload ranges, and the race detector enforces that.
// Multi-stripe operations always lock in ascending stripe order, so
// overlapping ranges cannot deadlock.
type Segment struct {
	mu      sync.RWMutex   // structural: closed flag, grow, backing swap
	stripes []sync.RWMutex // one per stripe of the current extent
	words   []uint64
	bytes   []byte // same storage as words
	back    *backing
	mode    SyncMode
	closed  bool
}

// stripeShift sets the stripe granularity (4 KiB). Coarse enough that
// the lock array is ~0.6% of the data, fine enough that independent
// clients working disjoint regions rarely share a stripe.
const stripeShift = 12

func stripeCount(nbytes int) int {
	n := (nbytes + (1 << stripeShift) - 1) >> stripeShift
	if n < 1 {
		n = 1
	}
	return n
}

// lockRange acquires the stripes covering [off, off+n) in ascending
// order and returns the covered stripe interval for unlockRange.
func (s *Segment) lockRange(off, n int, exclusive bool) (int, int) {
	if n <= 0 {
		return 0, -1
	}
	p0 := off >> stripeShift
	p1 := (off + n - 1) >> stripeShift
	for i := p0; i <= p1; i++ {
		if exclusive {
			s.stripes[i].Lock()
		} else {
			s.stripes[i].RLock()
		}
	}
	return p0, p1
}

func (s *Segment) unlockRange(p0, p1 int, exclusive bool) {
	for i := p0; i <= p1; i++ {
		if exclusive {
			s.stripes[i].Unlock()
		} else {
			s.stripes[i].RUnlock()
		}
	}
}

// NewSegment returns a volatile heap-backed segment of the given size,
// rounded up to a multiple of 8 bytes.
func NewSegment(size int) *Segment {
	s := &Segment{}
	s.alloc(size)
	return s
}

// NewPersistentSegment returns a segment backed by a memory-mapped file at
// path (created or truncated to size). mode selects the flush discipline.
func NewPersistentSegment(path string, size int, mode SyncMode) (*Segment, error) {
	b, words, bytes, err := openBacking(path, roundUp8(size))
	if err != nil {
		return nil, err
	}
	return &Segment{
		stripes: make([]sync.RWMutex, stripeCount(len(bytes))),
		words:   words,
		bytes:   bytes,
		back:    b,
		mode:    mode,
	}, nil
}

func roundUp8(n int) int {
	if n < 8 {
		return 8
	}
	return (n + 7) &^ 7
}

func (s *Segment) alloc(size int) {
	n := roundUp8(size) / 8
	s.words = make([]uint64, n)
	s.bytes = unsafe.Slice((*byte)(unsafe.Pointer(&s.words[0])), n*8)
	s.growStripes()
}

// growStripes sizes the stripe-lock array to the current extent. Called
// only while no data operation is in flight (construction, or Grow
// holding s.mu exclusively), so the idle mutexes may be reallocated.
func (s *Segment) growStripes() {
	if n := stripeCount(len(s.bytes)); n > len(s.stripes) {
		s.stripes = append(s.stripes, make([]sync.RWMutex, n-len(s.stripes))...)
	}
}

// Len reports the segment length in bytes.
func (s *Segment) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.bytes)
}

// ReadAt copies len(buf) bytes from offset off into buf.
func (s *Segment) ReadAt(off int, buf []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	if off < 0 || off+len(buf) > len(s.bytes) {
		return fmt.Errorf("%w: read [%d,%d) of %d", ErrOutOfBounds, off, off+len(buf), len(s.bytes))
	}
	p0, p1 := s.lockRange(off, len(buf), false)
	atomicCopyOut(s.words, off, buf)
	s.unlockRange(p0, p1, false)
	return nil
}

// atomicCopyOut copies words[off:off+len(buf)] (byte offsets) into buf
// with one atomic load per touched word — plain MOVs on mainstream
// hardware, but visible to the race detector as synchronized against
// the lock-free word atomics.
func atomicCopyOut(words []uint64, off int, buf []byte) {
	i := off / 8
	if r := off % 8; r != 0 {
		n := 8 - r
		if n > len(buf) {
			n = len(buf)
		}
		v := atomic.LoadUint64(&words[i])
		b := (*[8]byte)(unsafe.Pointer(&v))
		copy(buf[:n], b[r:r+n])
		buf = buf[n:]
		i++
	}
	for len(buf) >= 8 {
		v := atomic.LoadUint64(&words[i])
		b := (*[8]byte)(unsafe.Pointer(&v))
		copy(buf[:8], b[:])
		buf = buf[8:]
		i++
	}
	if len(buf) > 0 {
		v := atomic.LoadUint64(&words[i])
		b := (*[8]byte)(unsafe.Pointer(&v))
		copy(buf, b[:len(buf)])
	}
}

// WriteAt copies data into the segment at offset off.
func (s *Segment) WriteAt(off int, data []byte) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	if off < 0 || off+len(data) > len(s.bytes) {
		n := len(s.bytes)
		s.mu.RUnlock()
		return fmt.Errorf("%w: write [%d,%d) of %d", ErrOutOfBounds, off, off+len(data), n)
	}
	p0, p1 := s.lockRange(off, len(data), true)
	copy(s.bytes[off:], data)
	s.unlockRange(p0, p1, true)
	mode, back := s.mode, s.back
	s.mu.RUnlock()
	if mode == SyncEager && back != nil {
		return back.sync()
	}
	return nil
}

func (s *Segment) wordIndex(off int) (int, error) {
	if off%8 != 0 {
		return 0, ErrMisaligned
	}
	i := off / 8
	if i < 0 || i >= len(s.words) {
		return 0, fmt.Errorf("%w: word at %d of %d bytes", ErrOutOfBounds, off, len(s.bytes))
	}
	return i, nil
}

// CAS64 atomically compares-and-swaps the word at off. It returns the
// witnessed value and whether the swap happened.
func (s *Segment) CAS64(off int, old, new uint64) (uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, err := s.wordIndex(off)
	if err != nil || s.closed {
		return 0, false
	}
	if atomic.CompareAndSwapUint64(&s.words[i], old, new) {
		return old, true
	}
	return atomic.LoadUint64(&s.words[i]), false
}

// Load64 atomically loads the word at off; out-of-range loads return 0.
func (s *Segment) Load64(off int) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, err := s.wordIndex(off)
	if err != nil || s.closed {
		return 0
	}
	return atomic.LoadUint64(&s.words[i])
}

// Store64 atomically stores v at off; out-of-range stores are dropped.
func (s *Segment) Store64(off int, v uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, err := s.wordIndex(off)
	if err != nil || s.closed {
		return
	}
	atomic.StoreUint64(&s.words[i], v)
}

// Add64 atomically adds d to the word at off and returns the new value.
func (s *Segment) Add64(off int, d uint64) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, err := s.wordIndex(off)
	if err != nil || s.closed {
		return 0
	}
	return atomic.AddUint64(&s.words[i], d)
}

// Grow extends the segment to newSize bytes (no-op if already as large).
// Existing contents are preserved; concurrent accessors see either the old
// or the new extent.
func (s *Segment) Grow(newSize int) error {
	newSize = roundUp8(newSize)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if newSize <= len(s.bytes) {
		return nil
	}
	if s.back != nil {
		words, bytes, err := s.back.grow(newSize)
		if err != nil {
			return err
		}
		s.words, s.bytes = words, bytes
		s.growStripes()
		return nil
	}
	old := s.bytes
	s.alloc(newSize)
	copy(s.bytes, old)
	return nil
}

// Sync flushes a persistent segment to its backing file. It is a no-op for
// volatile segments.
func (s *Segment) Sync() error {
	s.mu.RLock()
	back := s.back
	s.mu.RUnlock()
	if back == nil {
		return nil
	}
	return back.sync()
}

// Persistent reports whether the segment has a backing file.
func (s *Segment) Persistent() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.back != nil
}

// Close releases the segment; persistent segments are flushed first.
func (s *Segment) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.back != nil {
		return s.back.close()
	}
	return nil
}

// PutUint64 writes v in little-endian at off (non-atomic bulk write).
func (s *Segment) PutUint64(off int, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return s.WriteAt(off, b[:])
}

// GetUint64 reads a little-endian word at off (non-atomic bulk read).
func (s *Segment) GetUint64(off int) (uint64, error) {
	var b [8]byte
	if err := s.ReadAt(off, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}
