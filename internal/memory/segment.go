// Package memory implements registered memory segments: the byte regions
// that back every distributed container partition. Segments support the
// access modes RDMA hardware offers — bulk byte reads/writes plus atomic
// 8-byte compare-and-swap — and can optionally be backed by a memory-mapped
// file, giving the paper's DataBox persistency (Section III-C6): a unified
// memory/storage address space where the kernel flushes dirty pages to an
// NVMe-class device.
package memory

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Errors returned by segment operations.
var (
	ErrOutOfBounds = errors.New("memory: access out of bounds")
	ErrMisaligned  = errors.New("memory: atomic access must be 8-byte aligned")
	ErrClosed      = errors.New("memory: segment closed")
)

// SyncMode controls when a persistent segment flushes to its backing file.
type SyncMode int

const (
	// SyncNone never flushes (volatile segment).
	SyncNone SyncMode = iota
	// SyncRelaxed flushes only on explicit Sync calls or Close (the
	// paper's "relaxed" background synchronization).
	SyncRelaxed
	// SyncEager flushes after every bulk write (per-operation
	// synchronization, the paper's default durable mode).
	SyncEager
)

// Segment is a registered memory region. All methods are safe for
// concurrent use. Bulk byte access and word-level atomics may race with
// each other exactly as they would on real RDMA hardware; higher layers
// impose ordering with state words, as BCL does.
type Segment struct {
	mu     sync.RWMutex
	words  []uint64
	bytes  []byte // same storage as words
	back   *backing
	mode   SyncMode
	closed bool
}

// NewSegment returns a volatile heap-backed segment of the given size,
// rounded up to a multiple of 8 bytes.
func NewSegment(size int) *Segment {
	s := &Segment{}
	s.alloc(size)
	return s
}

// NewPersistentSegment returns a segment backed by a memory-mapped file at
// path (created or truncated to size). mode selects the flush discipline.
func NewPersistentSegment(path string, size int, mode SyncMode) (*Segment, error) {
	b, words, bytes, err := openBacking(path, roundUp8(size))
	if err != nil {
		return nil, err
	}
	return &Segment{words: words, bytes: bytes, back: b, mode: mode}, nil
}

func roundUp8(n int) int {
	if n < 8 {
		return 8
	}
	return (n + 7) &^ 7
}

func (s *Segment) alloc(size int) {
	n := roundUp8(size) / 8
	s.words = make([]uint64, n)
	s.bytes = unsafe.Slice((*byte)(unsafe.Pointer(&s.words[0])), n*8)
}

// Len reports the segment length in bytes.
func (s *Segment) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.bytes)
}

// ReadAt copies len(buf) bytes from offset off into buf.
func (s *Segment) ReadAt(off int, buf []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	if off < 0 || off+len(buf) > len(s.bytes) {
		return fmt.Errorf("%w: read [%d,%d) of %d", ErrOutOfBounds, off, off+len(buf), len(s.bytes))
	}
	copy(buf, s.bytes[off:])
	return nil
}

// WriteAt copies data into the segment at offset off.
func (s *Segment) WriteAt(off int, data []byte) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	if off < 0 || off+len(data) > len(s.bytes) {
		n := len(s.bytes)
		s.mu.RUnlock()
		return fmt.Errorf("%w: write [%d,%d) of %d", ErrOutOfBounds, off, off+len(data), n)
	}
	copy(s.bytes[off:], data)
	mode, back := s.mode, s.back
	s.mu.RUnlock()
	if mode == SyncEager && back != nil {
		return back.sync()
	}
	return nil
}

func (s *Segment) wordIndex(off int) (int, error) {
	if off%8 != 0 {
		return 0, ErrMisaligned
	}
	i := off / 8
	if i < 0 || i >= len(s.words) {
		return 0, fmt.Errorf("%w: word at %d of %d bytes", ErrOutOfBounds, off, len(s.bytes))
	}
	return i, nil
}

// CAS64 atomically compares-and-swaps the word at off. It returns the
// witnessed value and whether the swap happened.
func (s *Segment) CAS64(off int, old, new uint64) (uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, err := s.wordIndex(off)
	if err != nil || s.closed {
		return 0, false
	}
	if atomic.CompareAndSwapUint64(&s.words[i], old, new) {
		return old, true
	}
	return atomic.LoadUint64(&s.words[i]), false
}

// Load64 atomically loads the word at off; out-of-range loads return 0.
func (s *Segment) Load64(off int) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, err := s.wordIndex(off)
	if err != nil || s.closed {
		return 0
	}
	return atomic.LoadUint64(&s.words[i])
}

// Store64 atomically stores v at off; out-of-range stores are dropped.
func (s *Segment) Store64(off int, v uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, err := s.wordIndex(off)
	if err != nil || s.closed {
		return
	}
	atomic.StoreUint64(&s.words[i], v)
}

// Add64 atomically adds d to the word at off and returns the new value.
func (s *Segment) Add64(off int, d uint64) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, err := s.wordIndex(off)
	if err != nil || s.closed {
		return 0
	}
	return atomic.AddUint64(&s.words[i], d)
}

// Grow extends the segment to newSize bytes (no-op if already as large).
// Existing contents are preserved; concurrent accessors see either the old
// or the new extent.
func (s *Segment) Grow(newSize int) error {
	newSize = roundUp8(newSize)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if newSize <= len(s.bytes) {
		return nil
	}
	if s.back != nil {
		words, bytes, err := s.back.grow(newSize)
		if err != nil {
			return err
		}
		s.words, s.bytes = words, bytes
		return nil
	}
	old := s.bytes
	s.alloc(newSize)
	copy(s.bytes, old)
	return nil
}

// Sync flushes a persistent segment to its backing file. It is a no-op for
// volatile segments.
func (s *Segment) Sync() error {
	s.mu.RLock()
	back := s.back
	s.mu.RUnlock()
	if back == nil {
		return nil
	}
	return back.sync()
}

// Persistent reports whether the segment has a backing file.
func (s *Segment) Persistent() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.back != nil
}

// Close releases the segment; persistent segments are flushed first.
func (s *Segment) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.back != nil {
		return s.back.close()
	}
	return nil
}

// PutUint64 writes v in little-endian at off (non-atomic bulk write).
func (s *Segment) PutUint64(off int, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return s.WriteAt(off, b[:])
}

// GetUint64 reads a little-endian word at off (non-atomic bulk read).
func (s *Segment) GetUint64(off int) (uint64, error) {
	var b [8]byte
	if err := s.ReadAt(off, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}
