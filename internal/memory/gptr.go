package memory

import "fmt"

// GlobalPtr addresses a byte range inside a registered segment anywhere in
// the global address space — the PGAS "global pointer" both BCL and HCL
// build on.
type GlobalPtr struct {
	Node int // owning node
	Seg  int // fabric segment id at the node
	Off  int // byte offset inside the segment
}

// Add returns a pointer advanced by n bytes.
func (p GlobalPtr) Add(n int) GlobalPtr {
	p.Off += n
	return p
}

// String implements fmt.Stringer.
func (p GlobalPtr) String() string {
	return fmt.Sprintf("gptr{node=%d seg=%d off=%d}", p.Node, p.Seg, p.Off)
}
