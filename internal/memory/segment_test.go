package memory

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func TestSegmentReadWriteRoundTrip(t *testing.T) {
	s := NewSegment(1024)
	data := []byte("hermes container library")
	if err := s.WriteAt(100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := s.ReadAt(100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %q", got)
	}
}

func TestSegmentBounds(t *testing.T) {
	s := NewSegment(64)
	if err := s.WriteAt(60, make([]byte, 8)); err == nil {
		t.Fatal("write past end must fail")
	}
	if err := s.ReadAt(-1, make([]byte, 4)); err == nil {
		t.Fatal("negative read offset must fail")
	}
	if err := s.WriteAt(0, make([]byte, 64)); err != nil {
		t.Fatalf("full-length write failed: %v", err)
	}
}

func TestSegmentRoundsUpTo8(t *testing.T) {
	s := NewSegment(3)
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	if NewSegment(0).Len() != 8 {
		t.Fatal("zero-size segment should hold one word")
	}
}

func TestSegmentCAS(t *testing.T) {
	s := NewSegment(64)
	s.Store64(8, 5)
	if v, ok := s.CAS64(8, 5, 9); !ok || v != 5 {
		t.Fatalf("CAS(5->9) = (%d,%v), want (5,true)", v, ok)
	}
	if v, ok := s.CAS64(8, 5, 11); ok || v != 9 {
		t.Fatalf("failed CAS = (%d,%v), want (9,false)", v, ok)
	}
	if got := s.Load64(8); got != 9 {
		t.Fatalf("Load64 = %d, want 9", got)
	}
}

func TestSegmentCASMisaligned(t *testing.T) {
	s := NewSegment(64)
	if _, ok := s.CAS64(3, 0, 1); ok {
		t.Fatal("misaligned CAS must fail")
	}
	if v := s.Load64(5); v != 0 {
		t.Fatal("misaligned load should return 0")
	}
}

func TestSegmentAdd64(t *testing.T) {
	s := NewSegment(16)
	if got := s.Add64(0, 3); got != 3 {
		t.Fatalf("Add64 = %d, want 3", got)
	}
	if got := s.Add64(0, ^uint64(0)); got != 2 { // add -1
		t.Fatalf("Add64(-1) = %d, want 2", got)
	}
}

func TestSegmentWordByteCoherence(t *testing.T) {
	// Bulk writes and atomic loads must see the same storage.
	s := NewSegment(16)
	if err := s.PutUint64(0, 0xdeadbeefcafe); err != nil {
		t.Fatal(err)
	}
	if got := s.Load64(0); got != 0xdeadbeefcafe {
		t.Fatalf("atomic view of bulk write = %#x", got)
	}
	s.Store64(8, 42)
	if got, err := s.GetUint64(8); err != nil || got != 42 {
		t.Fatalf("bulk view of atomic store = %d, %v", got, err)
	}
}

func TestSegmentGrowPreserves(t *testing.T) {
	s := NewSegment(32)
	if err := s.WriteAt(0, []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	if err := s.Grow(4096); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4096 {
		t.Fatalf("Len after grow = %d", s.Len())
	}
	got := make([]byte, 16)
	if err := s.ReadAt(0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "0123456789abcdef" {
		t.Fatalf("grow lost data: %q", got)
	}
	if err := s.Grow(64); err != nil { // shrink request is a no-op
		t.Fatal(err)
	}
	if s.Len() != 4096 {
		t.Fatal("grow to smaller size must not shrink")
	}
}

func TestSegmentConcurrentCASCounter(t *testing.T) {
	s := NewSegment(8)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for {
					old := s.Load64(0)
					if _, ok := s.CAS64(0, old, old+1); ok {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := s.Load64(0); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestSegmentClose(t *testing.T) {
	s := NewSegment(64)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(0, []byte("x")); err != ErrClosed {
		t.Fatalf("write after close = %v, want ErrClosed", err)
	}
	if err := s.ReadAt(0, make([]byte, 1)); err != ErrClosed {
		t.Fatalf("read after close = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// Property: any in-bounds write followed by a read of the same range
// returns the written bytes.
func TestSegmentQuickRoundTrip(t *testing.T) {
	s := NewSegment(4096)
	rng := rand.New(rand.NewSource(1))
	prop := func(off uint16, n uint8) bool {
		o := int(off) % 4000
		data := make([]byte, int(n)%96+1)
		rng.Read(data)
		if err := s.WriteAt(o, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := s.ReadAt(o, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPersistentSegmentDurability(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg.bin")
	s, err := NewPersistentSegment(path, 4096, SyncEager)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Persistent() {
		t.Fatal("segment should report persistent")
	}
	payload := []byte("durable distributed data")
	if err := s.WriteAt(256, payload); err != nil {
		t.Fatal(err)
	}
	s.Store64(0, 777)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and verify both bulk and atomic writes survived.
	s2, err := NewPersistentSegment(path, 4096, SyncRelaxed)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := make([]byte, len(payload))
	if err := s2.ReadAt(256, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload lost: %q", got)
	}
	if v := s2.Load64(0); v != 777 {
		t.Fatalf("atomic word lost: %d", v)
	}
}

func TestPersistentSegmentGrow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grow.bin")
	s, err := NewPersistentSegment(path, 64, SyncRelaxed)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(0, []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if err := s.Grow(8192); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if err := s.ReadAt(0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcd" {
		t.Fatalf("grow lost data: %q", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 8192 {
		t.Fatalf("backing file size = %d, want 8192", fi.Size())
	}
}

func TestPersistentSegmentRelaxedSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "relaxed.bin")
	s, err := NewPersistentSegment(path, 128, SyncRelaxed)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.WriteAt(0, []byte("relaxed")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestVolatileSegmentSyncNoop(t *testing.T) {
	s := NewSegment(8)
	if err := s.Sync(); err != nil {
		t.Fatalf("volatile Sync: %v", err)
	}
}

func TestGlobalPtr(t *testing.T) {
	p := GlobalPtr{Node: 2, Seg: 1, Off: 128}
	q := p.Add(64)
	if q.Off != 192 || q.Node != 2 || q.Seg != 1 {
		t.Fatalf("Add: %+v", q)
	}
	if p.Off != 128 {
		t.Fatal("Add must not mutate receiver")
	}
	if s := p.String(); s != "gptr{node=2 seg=1 off=128}" {
		t.Fatalf("String: %s", s)
	}
}
