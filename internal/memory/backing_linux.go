//go:build linux

package memory

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// backing is a memory-mapped file region (linux implementation). The kernel
// synchronizes dirty pages to the device, exactly the mechanism the paper
// uses for DataBox persistency on NVMe.
type backing struct {
	f    *os.File
	data []byte
}

func openBacking(path string, size int) (*backing, []uint64, []byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, nil, nil, fmt.Errorf("memory: mmap %s: %w", path, err)
	}
	words, bytes := views(data)
	return &backing{f: f, data: data}, words, bytes, nil
}

// openSharedBacking is the attach-or-create variant behind
// NewSharedSegment: an existing file is never shrunk or zeroed, the
// mapped extent is max(existing size, size).
func openSharedBacking(path string, size int) (*backing, []uint64, []byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, nil, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > int64(size) {
		size = roundUp8(int(fi.Size()))
	}
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, nil, nil, fmt.Errorf("memory: mmap %s: %w", path, err)
	}
	words, bytes := views(data)
	return &backing{f: f, data: data}, words, bytes, nil
}

func views(data []byte) ([]uint64, []byte) {
	words := unsafe.Slice((*uint64)(unsafe.Pointer(&data[0])), len(data)/8)
	return words, data[:len(words)*8]
}

func (b *backing) grow(newSize int) ([]uint64, []byte, error) {
	if err := b.sync(); err != nil {
		return nil, nil, err
	}
	if err := syscall.Munmap(b.data); err != nil {
		return nil, nil, err
	}
	if err := b.f.Truncate(int64(newSize)); err != nil {
		return nil, nil, err
	}
	data, err := syscall.Mmap(int(b.f.Fd()), 0, newSize, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	b.data = data
	words, bytes := views(data)
	return words, bytes, nil
}

func (b *backing) sync() error {
	if len(b.data) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafe.Pointer(&b.data[0])), uintptr(len(b.data)), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return errno
	}
	return nil
}

func (b *backing) close() error {
	if err := b.sync(); err != nil {
		b.f.Close()
		return err
	}
	if err := syscall.Munmap(b.data); err != nil {
		b.f.Close()
		return err
	}
	b.data = nil
	return b.f.Close()
}
