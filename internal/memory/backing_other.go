//go:build !linux

package memory

import (
	"os"
	"unsafe"
)

// backing is the portable fallback: a heap buffer written to the file on
// sync. Slower than mmap but behaviourally identical for the library.
type backing struct {
	f    *os.File
	data []byte
}

func openBacking(path string, size int) (*backing, []uint64, []byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil && err.Error() != "EOF" {
		// Best effort: a fresh file reads as zeros anyway.
		_ = err
	}
	words, bytes := views(data)
	return &backing{f: f, data: data}, words, bytes, nil
}

// openSharedBacking is the attach-or-create variant behind
// NewSharedSegment. Without mmap there is no cross-process coherence —
// this fallback only preserves existing file contents and never shrinks.
func openSharedBacking(path string, size int) (*backing, []uint64, []byte, error) {
	if fi, err := os.Stat(path); err == nil && fi.Size() > int64(size) {
		size = roundUp8(int(fi.Size()))
	}
	return openBacking(path, size)
}

func views(data []byte) ([]uint64, []byte) {
	words := unsafe.Slice((*uint64)(unsafe.Pointer(&data[0])), len(data)/8)
	return words, data[:len(words)*8]
}

func (b *backing) grow(newSize int) ([]uint64, []byte, error) {
	if err := b.f.Truncate(int64(newSize)); err != nil {
		return nil, nil, err
	}
	nd := make([]byte, newSize)
	copy(nd, b.data)
	b.data = nd
	words, bytes := views(nd)
	return words, bytes, nil
}

func (b *backing) sync() error {
	if _, err := b.f.WriteAt(b.data, 0); err != nil {
		return err
	}
	return b.f.Sync()
}

func (b *backing) close() error {
	if err := b.sync(); err != nil {
		b.f.Close()
		return err
	}
	return b.f.Close()
}
