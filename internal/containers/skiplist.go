package containers

import "sync/atomic"

// SkipList is a lock-free concurrent ordered map (Herlihy–Shavit style,
// with markable successor references). It is the default engine behind
// HCL's ordered map/set partitions, substituting for the paper's wait-free
// red-black tree: both give O(log n) ordered operations under full MWMR
// concurrency; see DESIGN.md for the substitution rationale.
//
// Deletion is logical-then-physical: a node is first marked at every level
// (the mark travels inside the successor reference so it is CASable
// atomically with the link), then unlinked by the next traversal that
// passes it — the "asynchronous conflict resolution" the paper relies on.
type SkipList[K any, V any] struct {
	head  *slNode[K, V]
	tail  *slNode[K, V]
	less  func(a, b K) bool
	rnd   *rng
	count atomic.Int64
}

const slMaxLevel = 24

type slSucc[K any, V any] struct {
	next   *slNode[K, V]
	marked bool
}

type slNode[K any, V any] struct {
	k     K
	v     atomic.Pointer[V]
	next  [slMaxLevel]atomic.Pointer[slSucc[K, V]]
	level int // number of levels this node participates in
}

// NewSkipList returns an empty list ordered by less. For map semantics,
// keys a and b are considered equal when !less(a,b) && !less(b,a).
func NewSkipList[K any, V any](less func(a, b K) bool) *SkipList[K, V] {
	s := &SkipList[K, V]{
		less: less,
		rnd:  newRNG(0x9e3779b97f4a7c15),
	}
	s.head = &slNode[K, V]{level: slMaxLevel}
	s.tail = &slNode[K, V]{level: slMaxLevel}
	for i := 0; i < slMaxLevel; i++ {
		s.head.next[i].Store(&slSucc[K, V]{next: s.tail})
		s.tail.next[i].Store(&slSucc[K, V]{})
	}
	return s
}

// Len reports the number of live entries.
func (s *SkipList[K, V]) Len() int { return int(s.count.Load()) }

// find locates the position of k at every level, snipping marked nodes it
// passes. It fills preds/succs/psp (the successor pointer loaded from each
// pred, needed for CAS) and reports whether an unmarked node with key k
// sits at level 0.
func (s *SkipList[K, V]) find(k K, preds, succs *[slMaxLevel]*slNode[K, V], psp *[slMaxLevel]*slSucc[K, V]) bool {
retry:
	for {
		pred := s.head
		for lvl := slMaxLevel - 1; lvl >= 0; lvl-- {
			sp := pred.next[lvl].Load()
			if sp.marked {
				// pred was deleted beneath us; its pointer is frozen
				// and possibly detached — restart from the head. A CAS
				// against a marked pointer would resurrect a deleted
				// node or link into a detached chain.
				continue retry
			}
			curr := sp.next
			for {
				if curr == s.tail {
					break
				}
				cs := curr.next[lvl].Load()
				for cs.marked {
					// Snip the marked node out of this level.
					if !pred.next[lvl].CompareAndSwap(sp, &slSucc[K, V]{next: cs.next}) {
						continue retry
					}
					sp = pred.next[lvl].Load()
					if sp.marked {
						continue retry
					}
					curr = sp.next
					if curr == s.tail {
						break
					}
					cs = curr.next[lvl].Load()
				}
				if curr == s.tail || !s.less(curr.k, k) {
					break
				}
				pred = curr
				sp = cs
				curr = cs.next
			}
			preds[lvl] = pred
			succs[lvl] = curr
			psp[lvl] = sp
		}
		c := succs[0]
		return c != s.tail && !s.less(k, c.k) && !s.less(c.k, k)
	}
}

// Find returns the value stored under k.
func (s *SkipList[K, V]) Find(k K) (V, bool) {
	var zero V
	// Wait-free read path: traverse without snipping.
	pred := s.head
	for lvl := slMaxLevel - 1; lvl >= 0; lvl-- {
		curr := pred.next[lvl].Load().next
		for curr != s.tail && s.less(curr.k, k) {
			pred = curr
			curr = curr.next[lvl].Load().next
		}
		if curr != s.tail && !s.less(k, curr.k) && !curr.next[0].Load().marked {
			if vp := curr.v.Load(); vp != nil {
				return *vp, true
			}
			return zero, true
		}
	}
	return zero, false
}

// Contains reports whether k is present.
func (s *SkipList[K, V]) Contains(k K) bool {
	_, ok := s.Find(k)
	return ok
}

// Insert stores v under k. It returns true when k was newly inserted,
// false when an existing entry's value was replaced.
func (s *SkipList[K, V]) Insert(k K, v V) bool {
	var preds, succs [slMaxLevel]*slNode[K, V]
	var psp [slMaxLevel]*slSucc[K, V]
	topLevel := s.rnd.randomLevel(slMaxLevel)
	for {
		if s.find(k, &preds, &succs, &psp) {
			node := succs[0]
			if node.next[0].Load().marked {
				continue // being deleted; retry until it is gone
			}
			node.v.Store(&v)
			return false
		}
		node := &slNode[K, V]{k: k, level: topLevel}
		node.v.Store(&v)
		for lvl := 0; lvl < topLevel; lvl++ {
			node.next[lvl].Store(&slSucc[K, V]{next: succs[lvl]})
		}
		// Linearization point: link at level 0.
		if !preds[0].next[0].CompareAndSwap(psp[0], &slSucc[K, V]{next: node}) {
			continue
		}
		s.count.Add(1)
		// Link the upper levels; each may need a refreshed snapshot.
		for lvl := 1; lvl < topLevel; lvl++ {
			for {
				ns := node.next[lvl].Load()
				if ns.marked {
					return true // deleted concurrently; stop linking
				}
				if ns.next != succs[lvl] {
					if !node.next[lvl].CompareAndSwap(ns, &slSucc[K, V]{next: succs[lvl]}) {
						continue
					}
				}
				if preds[lvl].next[lvl].CompareAndSwap(psp[lvl], &slSucc[K, V]{next: node}) {
					break
				}
				s.find(k, &preds, &succs, &psp)
				if succs[lvl] == node {
					break // already linked by a helper
				}
			}
		}
		return true
	}
}

// Delete removes k, reporting whether this call removed it.
func (s *SkipList[K, V]) Delete(k K) bool {
	var preds, succs [slMaxLevel]*slNode[K, V]
	var psp [slMaxLevel]*slSucc[K, V]
	if !s.find(k, &preds, &succs, &psp) {
		return false
	}
	node := succs[0]
	// Mark the upper levels top-down.
	for lvl := node.level - 1; lvl >= 1; lvl-- {
		ns := node.next[lvl].Load()
		for !ns.marked {
			node.next[lvl].CompareAndSwap(ns, &slSucc[K, V]{next: ns.next, marked: true})
			ns = node.next[lvl].Load()
		}
	}
	// Level 0 mark is the linearization point; only one remover wins.
	for {
		ns := node.next[0].Load()
		if ns.marked {
			return false
		}
		if node.next[0].CompareAndSwap(ns, &slSucc[K, V]{next: ns.next, marked: true}) {
			s.count.Add(-1)
			s.find(k, &preds, &succs, &psp) // physical cleanup
			return true
		}
	}
}

// Min returns the smallest live entry.
func (s *SkipList[K, V]) Min() (K, V, bool) {
	for curr := s.head.next[0].Load().next; curr != s.tail; curr = curr.next[0].Load().next {
		cs := curr.next[0].Load()
		if !cs.marked {
			if vp := curr.v.Load(); vp != nil {
				return curr.k, *vp, true
			}
		}
	}
	var zk K
	var zv V
	return zk, zv, false
}

// Range calls fn over live entries in ascending order until fn returns
// false. The view is weakly consistent.
func (s *SkipList[K, V]) Range(fn func(K, V) bool) {
	for curr := s.head.next[0].Load().next; curr != s.tail; curr = curr.next[0].Load().next {
		if curr.next[0].Load().marked {
			continue
		}
		vp := curr.v.Load()
		if vp == nil {
			continue
		}
		if !fn(curr.k, *vp) {
			return
		}
	}
}

// RangeFrom behaves like Range starting at the first key >= from.
func (s *SkipList[K, V]) RangeFrom(from K, fn func(K, V) bool) {
	pred := s.head
	for lvl := slMaxLevel - 1; lvl >= 0; lvl-- {
		curr := pred.next[lvl].Load().next
		for curr != s.tail && s.less(curr.k, from) {
			pred = curr
			curr = curr.next[lvl].Load().next
		}
	}
	for curr := pred.next[0].Load().next; curr != s.tail; curr = curr.next[0].Load().next {
		if s.less(curr.k, from) || curr.next[0].Load().marked {
			continue
		}
		vp := curr.v.Load()
		if vp == nil {
			continue
		}
		if !fn(curr.k, *vp) {
			return
		}
	}
}
