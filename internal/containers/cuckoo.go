package containers

import (
	"sync"
	"sync/atomic"
)

// CuckooMap is a concurrent cuckoo hash map (paper Section III-D1): two
// bucket arrays addressed by independent hash functions, so every key has
// exactly two candidate slots and lookups probe at most two buckets.
//
// Concurrency discipline: inserts, updates, finds, and deletes operate on
// per-slot atomic pointers under a shared latch; only bucket displacement
// (kicking a resident key to its alternate slot) and table resizing take
// the latch exclusively. This keeps the common path CAS-only — the paper's
// lock-free claim — while making the rare relocation path simple to reason
// about. Resizing doubles the table at a 0.75 load factor, matching the
// paper's defaults (initial capacity 128 buckets, factor 0.75).
type CuckooMap[K comparable, V any] struct {
	h1, h2 Hasher[K]
	latch  sync.RWMutex
	tab    atomic.Pointer[cuckooTable[K, V]]
	count  atomic.Int64
}

type cuckooTable[K comparable, V any] struct {
	b1, b2 []atomic.Pointer[cuckooEntry[K, V]]
	mask   uint64
}

type cuckooEntry[K comparable, V any] struct {
	k K
	v V
}

// DefaultBuckets is the initial number of buckets per array.
const DefaultBuckets = 128

// maxKicks bounds the displacement chain before the table grows.
const maxKicks = 32

// NewCuckooMap returns an empty map with the default initial capacity.
func NewCuckooMap[K comparable, V any]() *CuckooMap[K, V] {
	return NewCuckooMapSize[K, V](DefaultBuckets)
}

// NewCuckooMapSize returns an empty map with at least size buckets per
// array (rounded up to a power of two).
func NewCuckooMapSize[K comparable, V any](size int) *CuckooMap[K, V] {
	m := &CuckooMap[K, V]{h1: NewHasher[K](), h2: NewHasher[K]()}
	m.tab.Store(newCuckooTable[K, V](size))
	return m
}

func newCuckooTable[K comparable, V any](size int) *cuckooTable[K, V] {
	n := 8
	for n < size {
		n <<= 1
	}
	return &cuckooTable[K, V]{
		b1:   make([]atomic.Pointer[cuckooEntry[K, V]], n),
		b2:   make([]atomic.Pointer[cuckooEntry[K, V]], n),
		mask: uint64(n - 1),
	}
}

// Len reports the number of entries.
func (m *CuckooMap[K, V]) Len() int { return int(m.count.Load()) }

// Capacity reports the total number of slots across both arrays.
func (m *CuckooMap[K, V]) Capacity() int {
	t := m.tab.Load()
	return len(t.b1) + len(t.b2)
}

// LoadFactor reports entries / slots.
func (m *CuckooMap[K, V]) LoadFactor() float64 {
	return float64(m.count.Load()) / float64(m.Capacity())
}

// Find returns the value stored under k.
func (m *CuckooMap[K, V]) Find(k K) (V, bool) {
	m.latch.RLock()
	defer m.latch.RUnlock()
	t := m.tab.Load()
	if e := t.b1[m.h1(k)&t.mask].Load(); e != nil && e.k == k {
		return e.v, true
	}
	if e := t.b2[m.h2(k)&t.mask].Load(); e != nil && e.k == k {
		return e.v, true
	}
	var zero V
	return zero, false
}

// Contains reports whether k is present.
func (m *CuckooMap[K, V]) Contains(k K) bool {
	_, ok := m.Find(k)
	return ok
}

// Insert stores v under k, replacing any previous value. It returns true
// when k was newly inserted, false when an existing entry was updated —
// repeated insertions of the same key are always consistent, as the paper
// requires of its cuckoo structures.
func (m *CuckooMap[K, V]) Insert(k K, v V) bool {
	e := &cuckooEntry[K, V]{k: k, v: v}
	inserted, done := m.tryInsert(e)
	if !done {
		// Both candidate slots hold other keys: displace under the
		// exclusive latch, growing as needed.
		inserted = m.insertSlow(e)
	}
	if inserted {
		m.count.Add(1)
		if m.LoadFactor() > 0.75 {
			m.grow()
		}
	}
	return inserted
}

// tryInsert attempts the CAS fast path. done=false means both slots are
// occupied by other keys and displacement is required.
func (m *CuckooMap[K, V]) tryInsert(e *cuckooEntry[K, V]) (inserted, done bool) {
	m.latch.RLock()
	defer m.latch.RUnlock()
	t := m.tab.Load()
	s1 := &t.b1[m.h1(e.k)&t.mask]
	s2 := &t.b2[m.h2(e.k)&t.mask]
	for {
		e1, e2 := s1.Load(), s2.Load()
		switch {
		case e1 != nil && e1.k == e.k:
			if s1.CompareAndSwap(e1, e) {
				return false, true
			}
		case e2 != nil && e2.k == e.k:
			if s2.CompareAndSwap(e2, e) {
				return false, true
			}
		case e1 == nil:
			if s1.CompareAndSwap(nil, e) {
				return true, true
			}
		case e2 == nil:
			if s2.CompareAndSwap(nil, e) {
				return true, true
			}
		default:
			return false, false
		}
	}
}

// insertSlow handles the displacement path under the exclusive latch. It
// reports whether k was newly inserted (false when another writer inserted
// the same key first and this call degraded to an update).
func (m *CuckooMap[K, V]) insertSlow(e *cuckooEntry[K, V]) bool {
	m.latch.Lock()
	defer m.latch.Unlock()
	t := m.tab.Load()
	// Re-check under the latch: the key may have appeared meanwhile.
	if s := &t.b1[m.h1(e.k)&t.mask]; s.Load() != nil && s.Load().k == e.k {
		s.Store(e)
		return false
	}
	if s := &t.b2[m.h2(e.k)&t.mask]; s.Load() != nil && s.Load().k == e.k {
		s.Store(e)
		return false
	}
	// Walk the displacement chain. If it fails after maxKicks, e is
	// already placed in t and the final evictee is homeless — rebuild
	// into a doubled table that also includes the evictee.
	if evictee, ok := placeWithKicks(m, t, e); !ok {
		m.growLocked(t, evictee)
	}
	return true
}

// placeWithKicks walks a cuckoo displacement chain starting with e. On
// success the evictee is nil; on failure the homeless evictee is returned.
func placeWithKicks[K comparable, V any](m *CuckooMap[K, V], t *cuckooTable[K, V], e *cuckooEntry[K, V]) (*cuckooEntry[K, V], bool) {
	cur := e
	useFirst := true
	for kick := 0; kick < maxKicks; kick++ {
		var slot *atomic.Pointer[cuckooEntry[K, V]]
		if useFirst {
			slot = &t.b1[m.h1(cur.k)&t.mask]
		} else {
			slot = &t.b2[m.h2(cur.k)&t.mask]
		}
		victim := slot.Load()
		slot.Store(cur)
		if victim == nil {
			return nil, true
		}
		cur = victim
		useFirst = !useFirst
	}
	return cur, false
}

// grow doubles the table under the exclusive latch (load-factor trigger).
func (m *CuckooMap[K, V]) grow() {
	m.latch.Lock()
	defer m.latch.Unlock()
	t := m.tab.Load()
	// Re-check: another writer may have grown the table already.
	if float64(m.count.Load()) <= 0.75*float64(len(t.b1)+len(t.b2)) {
		return
	}
	m.growLocked(t, nil)
}

// growLocked rebuilds into a table at least twice as large, including the
// optional homeless extra entry. Caller holds the exclusive latch. The new
// table is returned (and stored).
func (m *CuckooMap[K, V]) growLocked(old *cuckooTable[K, V], extra *cuckooEntry[K, V]) *cuckooTable[K, V] {
	size := len(old.b1) * 2
	for {
		nt := newCuckooTable[K, V](size)
		if rehashInto(m, nt, old, extra) {
			m.tab.Store(nt)
			return nt
		}
		size *= 2
	}
}

// rehashInto re-places every entry of old (plus extra) into nt, reporting
// false if some displacement chain fails.
func rehashInto[K comparable, V any](m *CuckooMap[K, V], nt, old *cuckooTable[K, V], extra *cuckooEntry[K, V]) bool {
	insert := func(e *cuckooEntry[K, V]) bool {
		_, ok := placeWithKicks(m, nt, e)
		return ok
	}
	for i := range old.b1 {
		if e := old.b1[i].Load(); e != nil && !insert(e) {
			return false
		}
	}
	for i := range old.b2 {
		if e := old.b2[i].Load(); e != nil && !insert(e) {
			return false
		}
	}
	if extra != nil && !insert(extra) {
		return false
	}
	return true
}

// Upsert atomically installs fn(old, exists) under k: an existing entry is
// replaced with a CAS-retry loop (no lost updates under concurrent
// merging), an absent key is inserted with fn(zero, false). It returns
// true when k was newly inserted. This is the primitive behind HCL's
// server-side merge operations (e.g. histogram increments executed in one
// invocation).
func (m *CuckooMap[K, V]) Upsert(k K, fn func(old V, exists bool) V) bool {
	var zero V
	for attempt := 0; ; attempt++ {
		if updated, retry := m.tryUpdate(k, fn); updated {
			return false
		} else if retry {
			continue
		}
		// Key absent at the moment of the scan: attempt a fresh insert
		// into an empty candidate slot.
		e := &cuckooEntry[K, V]{k: k, v: fn(zero, false)}
		if inserted, done := m.tryInsertAbsent(e); done && inserted {
			m.count.Add(1)
			if m.LoadFactor() > 0.75 {
				m.grow()
			}
			return true
		}
		if attempt == 0 {
			continue // one optimistic rescan before taking the latch
		}
		// Resolve definitively under the exclusive latch (handles full
		// candidate slots via displacement/growth).
		inserted, handled := m.upsertSlow(k, fn)
		if !handled {
			continue
		}
		if inserted {
			m.count.Add(1)
			if m.LoadFactor() > 0.75 {
				m.grow()
			}
		}
		return inserted
	}
}

// upsertSlow resolves an upsert under the exclusive latch. handled is
// always true; the pair keeps the call-site symmetric with the fast path.
func (m *CuckooMap[K, V]) upsertSlow(k K, fn func(old V, exists bool) V) (inserted, handled bool) {
	m.latch.Lock()
	defer m.latch.Unlock()
	t := m.tab.Load()
	for _, slot := range []*atomic.Pointer[cuckooEntry[K, V]]{
		&t.b1[m.h1(k)&t.mask], &t.b2[m.h2(k)&t.mask],
	} {
		if e := slot.Load(); e != nil && e.k == k {
			slot.Store(&cuckooEntry[K, V]{k: k, v: fn(e.v, true)})
			return false, true
		}
	}
	var zero V
	e := &cuckooEntry[K, V]{k: k, v: fn(zero, false)}
	if evictee, ok := placeWithKicks(m, t, e); !ok {
		m.growLocked(t, evictee)
	}
	return true, true
}

// tryUpdate CAS-replaces the entry for k if present. retry is true when a
// CAS lost a race and the caller should rescan.
func (m *CuckooMap[K, V]) tryUpdate(k K, fn func(old V, exists bool) V) (updated, retry bool) {
	m.latch.RLock()
	defer m.latch.RUnlock()
	t := m.tab.Load()
	for _, slot := range []*atomic.Pointer[cuckooEntry[K, V]]{
		&t.b1[m.h1(k)&t.mask], &t.b2[m.h2(k)&t.mask],
	} {
		if e := slot.Load(); e != nil && e.k == k {
			ne := &cuckooEntry[K, V]{k: k, v: fn(e.v, true)}
			if slot.CompareAndSwap(e, ne) {
				return true, false
			}
			return false, true
		}
	}
	return false, false
}

// tryInsertAbsent inserts e only into an empty candidate slot. done=false
// means the slots are occupied (possibly by the key itself now) and the
// caller must rescan; inserted reports success.
func (m *CuckooMap[K, V]) tryInsertAbsent(e *cuckooEntry[K, V]) (inserted, done bool) {
	m.latch.RLock()
	defer m.latch.RUnlock()
	t := m.tab.Load()
	s1 := &t.b1[m.h1(e.k)&t.mask]
	s2 := &t.b2[m.h2(e.k)&t.mask]
	e1, e2 := s1.Load(), s2.Load()
	if (e1 != nil && e1.k == e.k) || (e2 != nil && e2.k == e.k) {
		return false, false // key reappeared; caller re-runs the update path
	}
	if e1 == nil && s1.CompareAndSwap(nil, e) {
		return true, true
	}
	if e2 == nil && s2.CompareAndSwap(nil, e) {
		return true, true
	}
	if e1 != nil && e2 != nil {
		// Both occupied by other keys: fall back to the displacing
		// slow path, which re-checks for the key under the latch.
		return false, false
	}
	return false, false
}

// Delete removes k, reporting whether it was present.
func (m *CuckooMap[K, V]) Delete(k K) bool {
	m.latch.RLock()
	defer m.latch.RUnlock()
	t := m.tab.Load()
	s1 := &t.b1[m.h1(k)&t.mask]
	s2 := &t.b2[m.h2(k)&t.mask]
	for {
		if e := s1.Load(); e != nil && e.k == k {
			if s1.CompareAndSwap(e, nil) {
				m.count.Add(-1)
				return true
			}
			continue
		}
		if e := s2.Load(); e != nil && e.k == k {
			if s2.CompareAndSwap(e, nil) {
				m.count.Add(-1)
				return true
			}
			continue
		}
		return false
	}
}

// Range calls fn for every entry until fn returns false. The iteration is
// a weakly-consistent snapshot, like sync.Map.
func (m *CuckooMap[K, V]) Range(fn func(K, V) bool) {
	m.latch.RLock()
	t := m.tab.Load()
	m.latch.RUnlock()
	for i := range t.b1 {
		if e := t.b1[i].Load(); e != nil && !fn(e.k, e.v) {
			return
		}
	}
	for i := range t.b2 {
		if e := t.b2[i].Load(); e != nil && !fn(e.k, e.v) {
			return
		}
	}
}

// Reserve grows the table until it can hold at least n entries at the
// target load factor — the explicit resize of the paper's Table I.
func (m *CuckooMap[K, V]) Reserve(n int) {
	m.latch.Lock()
	defer m.latch.Unlock()
	t := m.tab.Load()
	for (len(t.b1)+len(t.b2))*3/4 < n {
		t = m.growLocked(t, nil)
	}
}
