package containers

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func TestSkipListBasicOps(t *testing.T) {
	s := NewSkipList[int, string](intLess)
	if s.Len() != 0 {
		t.Fatal("new list not empty")
	}
	if !s.Insert(5, "five") {
		t.Fatal("first insert should be new")
	}
	if s.Insert(5, "FIVE") {
		t.Fatal("same-key insert should update")
	}
	if v, ok := s.Find(5); !ok || v != "FIVE" {
		t.Fatalf("Find = %q,%v", v, ok)
	}
	if _, ok := s.Find(6); ok {
		t.Fatal("absent key found")
	}
	if !s.Contains(5) || s.Contains(7) {
		t.Fatal("Contains")
	}
	if !s.Delete(5) || s.Delete(5) {
		t.Fatal("Delete semantics")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSkipListOrderedIteration(t *testing.T) {
	s := NewSkipList[int, int](intLess)
	perm := rand.New(rand.NewSource(7)).Perm(2000)
	for _, k := range perm {
		s.Insert(k, k*2)
	}
	prev := -1
	count := 0
	s.Range(func(k, v int) bool {
		if k <= prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		if v != k*2 {
			t.Fatalf("value mismatch at %d: %d", k, v)
		}
		prev = k
		count++
		return true
	})
	if count != 2000 {
		t.Fatalf("Range visited %d", count)
	}
}

func TestSkipListRangeFrom(t *testing.T) {
	s := NewSkipList[int, int](intLess)
	for i := 0; i < 100; i += 2 { // evens 0..98
		s.Insert(i, i)
	}
	var got []int
	s.RangeFrom(51, func(k, _ int) bool {
		got = append(got, k)
		return len(got) < 5
	})
	want := []int{52, 54, 56, 58, 60}
	if len(got) != len(want) {
		t.Fatalf("RangeFrom got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RangeFrom got %v, want %v", got, want)
		}
	}
	// From beyond the maximum yields nothing.
	s.RangeFrom(1000, func(int, int) bool { t.Fatal("unexpected visit"); return false })
}

func TestSkipListMin(t *testing.T) {
	s := NewSkipList[int, string](intLess)
	if _, _, ok := s.Min(); ok {
		t.Fatal("Min on empty list")
	}
	s.Insert(10, "ten")
	s.Insert(3, "three")
	s.Insert(7, "seven")
	if k, v, ok := s.Min(); !ok || k != 3 || v != "three" {
		t.Fatalf("Min = %d,%q,%v", k, v, ok)
	}
	s.Delete(3)
	if k, _, _ := s.Min(); k != 7 {
		t.Fatalf("Min after delete = %d", k)
	}
}

func TestSkipListQuickAgainstModel(t *testing.T) {
	type op struct {
		Kind uint8
		Key  int8
		Val  int32
	}
	prop := func(ops []op) bool {
		s := NewSkipList[int8, int32](func(a, b int8) bool { return a < b })
		model := map[int8]int32{}
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0:
				_, existed := model[o.Key]
				model[o.Key] = o.Val
				if s.Insert(o.Key, o.Val) != !existed {
					return false
				}
			case 1:
				_, existed := model[o.Key]
				delete(model, o.Key)
				if s.Delete(o.Key) != existed {
					return false
				}
			case 2:
				mv, mok := model[o.Key]
				gv, gok := s.Find(o.Key)
				if mok != gok || (mok && mv != gv) {
					return false
				}
			}
		}
		if s.Len() != len(model) {
			return false
		}
		// Ordered scan must equal the sorted model.
		keys := make([]int8, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		i := 0
		okScan := true
		s.Range(func(k int8, v int32) bool {
			if i >= len(keys) || keys[i] != k || model[k] != v {
				okScan = false
				return false
			}
			i++
			return true
		})
		return okScan && i == len(keys)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSkipListConcurrentInserts(t *testing.T) {
	s := NewSkipList[int, int](intLess)
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := w*per + i
				if !s.Insert(k, k) {
					t.Errorf("duplicate insert report for %d", k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != workers*per {
		t.Fatalf("Len = %d", s.Len())
	}
	prev := -1
	n := 0
	s.Range(func(k, v int) bool {
		if k <= prev || v != k {
			t.Fatalf("order/value violation at %d (prev %d, v %d)", k, prev, v)
		}
		prev = k
		n++
		return true
	})
	if n != workers*per {
		t.Fatalf("scan saw %d", n)
	}
}

func TestSkipListConcurrentInsertDelete(t *testing.T) {
	s := NewSkipList[int, int](intLess)
	const keys = 256
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 4000; i++ {
				k := rng.Intn(keys)
				if rng.Intn(2) == 0 {
					s.Insert(k, k)
				} else {
					s.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
	// Every surviving key maps to itself, scan order is strict, and the
	// count matches the scan.
	prev := -1
	n := 0
	s.Range(func(k, v int) bool {
		if k <= prev || v != k {
			t.Fatalf("violation: k=%d prev=%d v=%d", k, prev, v)
		}
		prev = k
		n++
		return true
	})
	if n != s.Len() {
		t.Fatalf("scan %d vs Len %d", n, s.Len())
	}
}

func TestSkipListDeleteContention(t *testing.T) {
	// Exactly one deleter must win per key.
	s := NewSkipList[int, int](intLess)
	const keys = 512
	for i := 0; i < keys; i++ {
		s.Insert(i, i)
	}
	wins := make([]int, keys)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				if s.Delete(i) {
					mu.Lock()
					wins[i]++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for i, w := range wins {
		if w != 1 {
			t.Fatalf("key %d deleted %d times", i, w)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after full deletion", s.Len())
	}
}

func TestRandomLevelDistribution(t *testing.T) {
	r := newRNG(42)
	counts := make([]int, slMaxLevel+1)
	const draws = 100_000
	for i := 0; i < draws; i++ {
		lvl := r.randomLevel(slMaxLevel)
		if lvl < 1 || lvl > slMaxLevel {
			t.Fatalf("level %d out of range", lvl)
		}
		counts[lvl]++
	}
	// Roughly half the draws land on level 1, a quarter on 2, etc.
	if counts[1] < draws/3 || counts[1] > 2*draws/3 {
		t.Fatalf("level-1 frequency %d of %d looks non-geometric", counts[1], draws)
	}
	if counts[2] > counts[1] {
		t.Fatal("level 2 more common than level 1")
	}
}
