package containers

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestRBTreeBasicOps(t *testing.T) {
	tr := NewRBTree[int, string](intLess)
	if tr.Len() != 0 {
		t.Fatal("new tree not empty")
	}
	if !tr.Insert(1, "one") || tr.Insert(1, "ONE") {
		t.Fatal("insert/update semantics")
	}
	if v, ok := tr.Find(1); !ok || v != "ONE" {
		t.Fatalf("Find = %q,%v", v, ok)
	}
	if _, ok := tr.Find(2); ok {
		t.Fatal("absent key")
	}
	if !tr.Delete(1) || tr.Delete(1) {
		t.Fatal("delete semantics")
	}
}

func TestRBTreeInvariantsUnderInsertion(t *testing.T) {
	tr := NewRBTree[int, int](intLess)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		tr.Insert(rng.Intn(10_000), i)
		if i%500 == 0 {
			if ok, reason := tr.checkInvariants(); !ok {
				t.Fatalf("invariant broken after %d inserts: %s", i+1, reason)
			}
		}
	}
	if ok, reason := tr.checkInvariants(); !ok {
		t.Fatal(reason)
	}
}

func TestRBTreeInvariantsUnderDeletion(t *testing.T) {
	tr := NewRBTree[int, int](intLess)
	const n = 3000
	perm := rand.New(rand.NewSource(9)).Perm(n)
	for _, k := range perm {
		tr.Insert(k, k)
	}
	del := rand.New(rand.NewSource(10)).Perm(n)
	for i, k := range del {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
		if i%200 == 0 {
			if ok, reason := tr.checkInvariants(); !ok {
				t.Fatalf("invariant broken after %d deletes: %s", i+1, reason)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
}

func TestRBTreeOrderedScanAndMin(t *testing.T) {
	tr := NewRBTree[int, int](intLess)
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min of empty tree")
	}
	for _, k := range rand.New(rand.NewSource(4)).Perm(1000) {
		tr.Insert(k, -k)
	}
	if k, v, ok := tr.Min(); !ok || k != 0 || v != 0 {
		t.Fatalf("Min = %d,%d,%v", k, v, ok)
	}
	prev := -1
	tr.Range(func(k, v int) bool {
		if k <= prev || v != -k {
			t.Fatalf("scan violation at %d", k)
		}
		prev = k
		return true
	})
	if prev != 999 {
		t.Fatalf("scan stopped at %d", prev)
	}
}

func TestRBTreeRangeFrom(t *testing.T) {
	tr := NewRBTree[int, int](intLess)
	for i := 0; i < 50; i += 5 {
		tr.Insert(i, i)
	}
	var got []int
	tr.RangeFrom(12, func(k, _ int) bool {
		got = append(got, k)
		return len(got) < 3
	})
	if len(got) != 3 || got[0] != 15 || got[1] != 20 || got[2] != 25 {
		t.Fatalf("RangeFrom = %v", got)
	}
}

func TestRBTreeQuickAgainstModel(t *testing.T) {
	type op struct {
		Kind uint8
		Key  int8
		Val  int16
	}
	prop := func(ops []op) bool {
		tr := NewRBTree[int8, int16](func(a, b int8) bool { return a < b })
		model := map[int8]int16{}
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0:
				_, existed := model[o.Key]
				model[o.Key] = o.Val
				if tr.Insert(o.Key, o.Val) != !existed {
					return false
				}
			case 1:
				_, existed := model[o.Key]
				delete(model, o.Key)
				if tr.Delete(o.Key) != existed {
					return false
				}
			case 2:
				mv, mok := model[o.Key]
				gv, gok := tr.Find(o.Key)
				if mok != gok || (mok && mv != gv) {
					return false
				}
			}
		}
		if ok, _ := tr.checkInvariants(); !ok {
			return false
		}
		if tr.Len() != len(model) {
			return false
		}
		keys := make([]int8, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		i := 0
		good := true
		tr.Range(func(k int8, v int16) bool {
			if i >= len(keys) || keys[i] != k || model[k] != v {
				good = false
				return false
			}
			i++
			return true
		})
		return good && i == len(keys)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestLatchedRBTreeConcurrent(t *testing.T) {
	l := NewLatchedRBTree[int, int](intLess)
	const workers, per = 8, 1500
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := w*per + i
				l.Insert(k, k)
				if v, ok := l.Find(k); !ok || v != k {
					t.Errorf("Find(%d) after insert = %d,%v", k, v, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != workers*per {
		t.Fatalf("Len = %d", l.Len())
	}
	if k, _, ok := l.Min(); !ok || k != 0 {
		t.Fatalf("Min = %d,%v", k, ok)
	}
	// Interface parity with the skip list on Range/RangeFrom/Delete.
	n := 0
	l.Range(func(int, int) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("Range early stop at %d", n)
	}
	var got []int
	l.RangeFrom(workers*per-3, func(k, _ int) bool { got = append(got, k); return true })
	if len(got) != 3 {
		t.Fatalf("RangeFrom tail = %v", got)
	}
	if !l.Delete(0) || l.Delete(0) {
		t.Fatal("Delete semantics")
	}
}

// Both ordered engines must behave identically on the same op sequence.
func TestOrderedEnginesAgree(t *testing.T) {
	engines := func() []OrderedEngine[int, int] {
		return []OrderedEngine[int, int]{
			NewSkipList[int, int](intLess),
			NewLatchedRBTree[int, int](intLess),
		}
	}
	es := engines()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		k := rng.Intn(700)
		switch rng.Intn(3) {
		case 0:
			r0 := es[0].Insert(k, i)
			r1 := es[1].Insert(k, i)
			if r0 != r1 {
				t.Fatalf("Insert(%d) disagreement: %v vs %v", k, r0, r1)
			}
		case 1:
			r0 := es[0].Delete(k)
			r1 := es[1].Delete(k)
			if r0 != r1 {
				t.Fatalf("Delete(%d) disagreement", k)
			}
		case 2:
			v0, ok0 := es[0].Find(k)
			v1, ok1 := es[1].Find(k)
			if ok0 != ok1 || (ok0 && v0 != v1) {
				t.Fatalf("Find(%d) disagreement: (%d,%v) vs (%d,%v)", k, v0, ok0, v1, ok1)
			}
		}
	}
	if es[0].Len() != es[1].Len() {
		t.Fatalf("Len disagreement: %d vs %d", es[0].Len(), es[1].Len())
	}
	k0, _, ok0 := es[0].Min()
	k1, _, ok1 := es[1].Min()
	if ok0 != ok1 || (ok0 && k0 != k1) {
		t.Fatalf("Min disagreement")
	}
}
