package containers

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks of the node-local concurrent engines — the structures
// every RPC handler mutates. Parallel variants measure MWMR scalability.

func BenchmarkCuckooInsert(b *testing.B) {
	m := NewCuckooMap[int, int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Insert(i, i)
	}
}

func BenchmarkCuckooFind(b *testing.B) {
	m := NewCuckooMap[int, int]()
	for i := 0; i < 1<<16; i++ {
		m.Insert(i, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Find(i & (1<<16 - 1))
	}
}

func BenchmarkCuckooInsertParallel(b *testing.B) {
	m := NewCuckooMap[int, int]()
	m.Reserve(1 << 20)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(rand.Int63()))
		for pb.Next() {
			k := rng.Int()
			m.Insert(k, k)
		}
	})
}

func BenchmarkCuckooUpsertParallelHotKeys(b *testing.B) {
	m := NewCuckooMap[int, int]()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m.Upsert(i&63, func(old int, _ bool) int { return old + 1 })
			i++
		}
	})
}

func BenchmarkSkipListInsert(b *testing.B) {
	s := NewSkipList[int, int](intLess)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Insert(i, i)
	}
}

func BenchmarkSkipListFind(b *testing.B) {
	s := NewSkipList[int, int](intLess)
	for i := 0; i < 1<<16; i++ {
		s.Insert(i, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Find(i & (1<<16 - 1))
	}
}

func BenchmarkSkipListInsertParallel(b *testing.B) {
	s := NewSkipList[int, int](intLess)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(rand.Int63()))
		for pb.Next() {
			k := rng.Int()
			s.Insert(k, k)
		}
	})
}

func BenchmarkRBTreeInsert(b *testing.B) {
	t := NewRBTree[int, int](intLess)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Insert(i, i)
	}
}

func BenchmarkLatchedRBTreeInsertParallel(b *testing.B) {
	t := NewLatchedRBTree[int, int](intLess)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(rand.Int63()))
		for pb.Next() {
			k := rng.Int()
			t.Insert(k, k)
		}
	})
}

func BenchmarkMSQueuePushPop(b *testing.B) {
	q := NewMSQueue[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop()
	}
}

func BenchmarkMSQueueParallel(b *testing.B) {
	q := NewMSQueue[int]()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q.Push(1)
			q.Pop()
		}
	})
}

func BenchmarkSkipPQPushPop(b *testing.B) {
	pq := NewSkipPQ[int](intLess)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pq.Push(i)
		pq.PopMin()
	}
}

func BenchmarkSkipPQParallel(b *testing.B) {
	pq := NewSkipPQ[int](intLess)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(rand.Int63()))
		for pb.Next() {
			pq.Push(rng.Int())
			pq.PopMin()
		}
	})
}

func BenchmarkHeapPQParallel(b *testing.B) {
	pq := NewHeapPQ[int](intLess)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(rand.Int63()))
		for pb.Next() {
			pq.Push(rng.Int())
			pq.PopMin()
		}
	})
}
