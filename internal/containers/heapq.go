package containers

import "sync"

// HeapPQ is a mutex-protected binary heap. It exists as the ablation
// baseline for SkipPQ: identical semantics, coarse-grained locking, so the
// benches can quantify what lock freedom buys under concurrency.
type HeapPQ[T any] struct {
	mu   sync.Mutex
	less func(a, b T) bool
	data []T
}

// NewHeapPQ returns an empty heap ordered by less (min first).
func NewHeapPQ[T any](less func(a, b T) bool) *HeapPQ[T] {
	return &HeapPQ[T]{less: less}
}

// Len reports the number of elements.
func (h *HeapPQ[T]) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.data)
}

// Push inserts v.
func (h *HeapPQ[T]) Push(v T) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.data = append(h.data, v)
	h.up(len(h.data) - 1)
}

// PopMin removes and returns the minimum element.
func (h *HeapPQ[T]) PopMin() (T, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var zero T
	n := len(h.data)
	if n == 0 {
		return zero, false
	}
	top := h.data[0]
	h.data[0] = h.data[n-1]
	h.data[n-1] = zero
	h.data = h.data[:n-1]
	if len(h.data) > 0 {
		h.down(0)
	}
	return top, true
}

// PeekMin returns the minimum element without removing it.
func (h *HeapPQ[T]) PeekMin() (T, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.data) == 0 {
		var zero T
		return zero, false
	}
	return h.data[0], true
}

func (h *HeapPQ[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.data[i], h.data[parent]) {
			return
		}
		h.data[i], h.data[parent] = h.data[parent], h.data[i]
		i = parent
	}
}

func (h *HeapPQ[T]) down(i int) {
	n := len(h.data)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.data[l], h.data[smallest]) {
			smallest = l
		}
		if r < n && h.less(h.data[r], h.data[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.data[i], h.data[smallest] = h.data[smallest], h.data[i]
		i = smallest
	}
}

// PQ is the interface both priority-queue engines satisfy; the ordered
// container layer and the ablation benches program against it.
type PQ[T any] interface {
	Push(v T)
	PopMin() (T, bool)
	PeekMin() (T, bool)
	Len() int
}

var (
	_ PQ[int] = (*SkipPQ[int])(nil)
	_ PQ[int] = (*HeapPQ[int])(nil)
)
