package containers

import "sync/atomic"

// MSQueue is a lock-free multi-writer multi-reader FIFO queue in the
// Michael–Scott style, the engine behind HCL::queue partitions (the paper
// cites the closely related optimistic queue of Ladan-Mozes & Shavit; the
// MS queue provides the same lock-free MWMR FIFO semantics — see
// DESIGN.md). Push CASes a node onto the tail; pop CASes the head forward;
// lagging tails are repaired cooperatively by whichever thread notices
// them, which plays the role of the paper's background fix-list pass.
type MSQueue[T any] struct {
	head  atomic.Pointer[msNode[T]]
	tail  atomic.Pointer[msNode[T]]
	count atomic.Int64
}

type msNode[T any] struct {
	v    T
	next atomic.Pointer[msNode[T]]
}

// NewMSQueue returns an empty queue.
func NewMSQueue[T any]() *MSQueue[T] {
	q := &MSQueue[T]{}
	sentinel := &msNode[T]{}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// Len reports the number of queued elements.
func (q *MSQueue[T]) Len() int { return int(q.count.Load()) }

// Push appends v to the back of the queue.
func (q *MSQueue[T]) Push(v T) {
	node := &msNode[T]{v: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if next != nil {
			// Tail is lagging: help swing it forward.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, node) {
			q.tail.CompareAndSwap(tail, node)
			q.count.Add(1)
			return
		}
	}
}

// Pop removes and returns the front element.
func (q *MSQueue[T]) Pop() (T, bool) {
	var zero T
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if next == nil {
			return zero, false // empty
		}
		if head == tail {
			// Tail lagging behind a non-empty queue: help.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if q.head.CompareAndSwap(head, next) {
			q.count.Add(-1)
			v := next.v
			var z T
			next.v = z // release the payload for GC
			return v, true
		}
	}
}

// Peek returns the front element without removing it.
func (q *MSQueue[T]) Peek() (T, bool) {
	var zero T
	head := q.head.Load()
	next := head.next.Load()
	if next == nil {
		return zero, false
	}
	return next.v, true
}
