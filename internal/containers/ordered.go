package containers

import "sync"

// OrderedEngine is the contract an ordered-map partition engine must
// satisfy. Two implementations ship: the lock-free SkipList (default) and
// the LatchedRBTree (ablation).
type OrderedEngine[K any, V any] interface {
	Insert(k K, v V) bool
	Find(k K) (V, bool)
	Delete(k K) bool
	Min() (K, V, bool)
	Len() int
	Range(fn func(K, V) bool)
	RangeFrom(from K, fn func(K, V) bool)
}

// LatchedRBTree wraps the sequential red-black tree with a read-write
// latch, giving it the OrderedEngine interface.
type LatchedRBTree[K any, V any] struct {
	mu sync.RWMutex
	t  *RBTree[K, V]
}

// NewLatchedRBTree returns an empty latched tree ordered by less.
func NewLatchedRBTree[K any, V any](less func(a, b K) bool) *LatchedRBTree[K, V] {
	return &LatchedRBTree[K, V]{t: NewRBTree[K, V](less)}
}

// Insert implements OrderedEngine.
func (l *LatchedRBTree[K, V]) Insert(k K, v V) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.t.Insert(k, v)
}

// Find implements OrderedEngine.
func (l *LatchedRBTree[K, V]) Find(k K) (V, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.t.Find(k)
}

// Delete implements OrderedEngine.
func (l *LatchedRBTree[K, V]) Delete(k K) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.t.Delete(k)
}

// Min implements OrderedEngine.
func (l *LatchedRBTree[K, V]) Min() (K, V, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.t.Min()
}

// Len implements OrderedEngine.
func (l *LatchedRBTree[K, V]) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.t.Len()
}

// Range implements OrderedEngine.
func (l *LatchedRBTree[K, V]) Range(fn func(K, V) bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	l.t.Range(fn)
}

// RangeFrom implements OrderedEngine.
func (l *LatchedRBTree[K, V]) RangeFrom(from K, fn func(K, V) bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	l.t.RangeFrom(from, fn)
}

var (
	_ OrderedEngine[int, int] = (*SkipList[int, int])(nil)
	_ OrderedEngine[int, int] = (*LatchedRBTree[int, int])(nil)
)
