package containers

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestUpsertInsertsWhenAbsent(t *testing.T) {
	m := NewCuckooMap[string, int]()
	isNew := m.Upsert("k", func(old int, exists bool) int {
		if exists {
			t.Fatal("exists on empty map")
		}
		return 7
	})
	if !isNew {
		t.Fatal("first upsert should insert")
	}
	if v, ok := m.Find("k"); !ok || v != 7 {
		t.Fatalf("Find = %d,%v", v, ok)
	}
}

func TestUpsertMergesWhenPresent(t *testing.T) {
	m := NewCuckooMap[string, int]()
	m.Insert("k", 10)
	isNew := m.Upsert("k", func(old int, exists bool) int {
		if !exists || old != 10 {
			t.Fatalf("old = %d, exists = %v", old, exists)
		}
		return old + 5
	})
	if isNew {
		t.Fatal("upsert of present key reported new")
	}
	if v, _ := m.Find("k"); v != 15 {
		t.Fatalf("v = %d", v)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

// The critical property: concurrent increments must not lose updates.
func TestUpsertConcurrentIncrementsExact(t *testing.T) {
	m := NewCuckooMap[int, int]()
	const workers, per, keys = 8, 4000, 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Upsert(i%keys, func(old int, _ bool) int { return old + 1 })
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for k := 0; k < keys; k++ {
		v, ok := m.Find(k)
		if !ok {
			t.Fatalf("key %d missing", k)
		}
		total += v
	}
	if total != workers*per {
		t.Fatalf("lost updates: total %d, want %d", total, workers*per)
	}
}

func TestUpsertUnderDisplacementPressure(t *testing.T) {
	// Tiny table forces the exclusive-latch slow path.
	m := NewCuckooMapSize[int, int](8)
	for i := 0; i < 3000; i++ {
		if isNew := m.Upsert(i, func(old int, exists bool) int { return i }); !isNew {
			t.Fatalf("Upsert(%d) reported update", i)
		}
	}
	if m.Len() != 3000 {
		t.Fatalf("Len = %d", m.Len())
	}
	for i := 0; i < 3000; i++ {
		if v, ok := m.Find(i); !ok || v != i {
			t.Fatalf("lost %d (got %d,%v)", i, v, ok)
		}
	}
}

func TestUpsertQuickAgainstModel(t *testing.T) {
	type op struct {
		Key uint8
		Add int8
	}
	prop := func(ops []op) bool {
		m := NewCuckooMapSize[uint8, int](8)
		model := map[uint8]int{}
		for _, o := range ops {
			_, existed := model[o.Key]
			model[o.Key] += int(o.Add)
			isNew := m.Upsert(o.Key, func(old int, exists bool) int {
				return old + int(o.Add)
			})
			if isNew == existed {
				return false
			}
		}
		if m.Len() != len(model) {
			return false
		}
		for k, v := range model {
			if got, ok := m.Find(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestUpsertMixedWithInsertDelete(t *testing.T) {
	m := NewCuckooMap[int, int]()
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := i % 64
				switch w % 3 {
				case 0:
					m.Upsert(k, func(old int, _ bool) int { return old + 1 })
				case 1:
					m.Find(k)
				case 2:
					if i%17 == 0 {
						m.Delete(k)
					} else {
						m.Upsert(k, func(old int, _ bool) int { return old + 1 })
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Structure must remain consistent: scan agrees with Len.
	n := 0
	m.Range(func(int, int) bool { n++; return true })
	if n != m.Len() {
		t.Fatalf("scan %d vs Len %d", n, m.Len())
	}
}
