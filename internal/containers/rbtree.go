package containers

// RBTree is a classic sequential red-black tree. Wrapped in LatchedRBTree
// it is the ablation alternative to the lock-free skip list for ordered
// partitions (the paper's cited engine is a concurrent red-black tree; the
// latched variant preserves its O(log n) balanced-tree behaviour with
// coarse concurrency control, which the ablation bench quantifies).
type RBTree[K any, V any] struct {
	root  *rbNode[K, V]
	less  func(a, b K) bool
	count int
}

type rbColor bool

const (
	rbRed   rbColor = false
	rbBlack rbColor = true
)

type rbNode[K any, V any] struct {
	k                   K
	v                   V
	left, right, parent *rbNode[K, V]
	color               rbColor
}

// NewRBTree returns an empty tree ordered by less.
func NewRBTree[K any, V any](less func(a, b K) bool) *RBTree[K, V] {
	return &RBTree[K, V]{less: less}
}

// Len reports the number of entries.
func (t *RBTree[K, V]) Len() int { return t.count }

func (t *RBTree[K, V]) equal(a, b K) bool { return !t.less(a, b) && !t.less(b, a) }

// Find returns the value stored under k.
func (t *RBTree[K, V]) Find(k K) (V, bool) {
	n := t.root
	for n != nil {
		switch {
		case t.less(k, n.k):
			n = n.left
		case t.less(n.k, k):
			n = n.right
		default:
			return n.v, true
		}
	}
	var zero V
	return zero, false
}

// Insert stores v under k, returning true when k was newly inserted.
func (t *RBTree[K, V]) Insert(k K, v V) bool {
	var parent *rbNode[K, V]
	link := &t.root
	for *link != nil {
		parent = *link
		switch {
		case t.less(k, parent.k):
			link = &parent.left
		case t.less(parent.k, k):
			link = &parent.right
		default:
			parent.v = v
			return false
		}
	}
	n := &rbNode[K, V]{k: k, v: v, parent: parent, color: rbRed}
	*link = n
	t.count++
	t.insertFixup(n)
	return true
}

func (t *RBTree[K, V]) insertFixup(n *rbNode[K, V]) {
	for n.parent != nil && n.parent.color == rbRed {
		gp := n.parent.parent
		if n.parent == gp.left {
			uncle := gp.right
			if uncle != nil && uncle.color == rbRed {
				n.parent.color = rbBlack
				uncle.color = rbBlack
				gp.color = rbRed
				n = gp
				continue
			}
			if n == n.parent.right {
				n = n.parent
				t.rotateLeft(n)
			}
			n.parent.color = rbBlack
			gp.color = rbRed
			t.rotateRight(gp)
		} else {
			uncle := gp.left
			if uncle != nil && uncle.color == rbRed {
				n.parent.color = rbBlack
				uncle.color = rbBlack
				gp.color = rbRed
				n = gp
				continue
			}
			if n == n.parent.left {
				n = n.parent
				t.rotateRight(n)
			}
			n.parent.color = rbBlack
			gp.color = rbRed
			t.rotateLeft(gp)
		}
	}
	t.root.color = rbBlack
}

func (t *RBTree[K, V]) rotateLeft(x *rbNode[K, V]) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *RBTree[K, V]) rotateRight(x *rbNode[K, V]) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

// Delete removes k, reporting whether it was present.
func (t *RBTree[K, V]) Delete(k K) bool {
	z := t.root
	for z != nil && !t.equal(z.k, k) {
		if t.less(k, z.k) {
			z = z.left
		} else {
			z = z.right
		}
	}
	if z == nil {
		return false
	}
	t.count--
	t.deleteNode(z)
	return true
}

func (t *RBTree[K, V]) deleteNode(z *rbNode[K, V]) {
	y := z
	yColor := y.color
	var x, xParent *rbNode[K, V]
	switch {
	case z.left == nil:
		x, xParent = z.right, z.parent
		t.transplant(z, z.right)
	case z.right == nil:
		x, xParent = z.left, z.parent
		t.transplant(z, z.left)
	default:
		y = t.minNode(z.right)
		yColor = y.color
		x = y.right
		if y.parent == z {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.color = z.color
	}
	if yColor == rbBlack {
		t.deleteFixup(x, xParent)
	}
}

func (t *RBTree[K, V]) transplant(u, v *rbNode[K, V]) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

func (t *RBTree[K, V]) minNode(n *rbNode[K, V]) *rbNode[K, V] {
	for n.left != nil {
		n = n.left
	}
	return n
}

func isBlack[K any, V any](n *rbNode[K, V]) bool { return n == nil || n.color == rbBlack }

func (t *RBTree[K, V]) deleteFixup(x, parent *rbNode[K, V]) {
	for x != t.root && isBlack(x) {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if w != nil && w.color == rbRed {
				w.color = rbBlack
				parent.color = rbRed
				t.rotateLeft(parent)
				w = parent.right
			}
			if w == nil {
				x, parent = parent, parent.parent
				continue
			}
			if isBlack(w.left) && isBlack(w.right) {
				w.color = rbRed
				x, parent = parent, parent.parent
				continue
			}
			if isBlack(w.right) {
				if w.left != nil {
					w.left.color = rbBlack
				}
				w.color = rbRed
				t.rotateRight(w)
				w = parent.right
			}
			w.color = parent.color
			parent.color = rbBlack
			if w.right != nil {
				w.right.color = rbBlack
			}
			t.rotateLeft(parent)
			x = t.root
			break
		}
		w := parent.left
		if w != nil && w.color == rbRed {
			w.color = rbBlack
			parent.color = rbRed
			t.rotateRight(parent)
			w = parent.left
		}
		if w == nil {
			x, parent = parent, parent.parent
			continue
		}
		if isBlack(w.left) && isBlack(w.right) {
			w.color = rbRed
			x, parent = parent, parent.parent
			continue
		}
		if isBlack(w.left) {
			if w.right != nil {
				w.right.color = rbBlack
			}
			w.color = rbRed
			t.rotateLeft(w)
			w = parent.left
		}
		w.color = parent.color
		parent.color = rbBlack
		if w.left != nil {
			w.left.color = rbBlack
		}
		t.rotateRight(parent)
		x = t.root
		break
	}
	if x != nil {
		x.color = rbBlack
	}
}

// Min returns the smallest entry.
func (t *RBTree[K, V]) Min() (K, V, bool) {
	if t.root == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	n := t.minNode(t.root)
	return n.k, n.v, true
}

// Range calls fn over entries in ascending order until fn returns false.
func (t *RBTree[K, V]) Range(fn func(K, V) bool) {
	t.rangeNode(t.root, fn)
}

func (t *RBTree[K, V]) rangeNode(n *rbNode[K, V], fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	if !t.rangeNode(n.left, fn) {
		return false
	}
	if !fn(n.k, n.v) {
		return false
	}
	return t.rangeNode(n.right, fn)
}

// RangeFrom behaves like Range starting at the first key >= from.
func (t *RBTree[K, V]) RangeFrom(from K, fn func(K, V) bool) {
	t.rangeFromNode(t.root, from, fn)
}

func (t *RBTree[K, V]) rangeFromNode(n *rbNode[K, V], from K, fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	if !t.less(n.k, from) { // n.k >= from: left subtree may contribute
		if !t.rangeFromNode(n.left, from, fn) {
			return false
		}
		if !fn(n.k, n.v) {
			return false
		}
	}
	return t.rangeFromNode(n.right, from, fn)
}

// checkInvariants verifies red-black properties; used by tests.
func (t *RBTree[K, V]) checkInvariants() (ok bool, reason string) {
	if t.root == nil {
		return true, ""
	}
	if t.root.color != rbBlack {
		return false, "root is red"
	}
	_, ok, reason = t.checkNode(t.root)
	return ok, reason
}

func (t *RBTree[K, V]) checkNode(n *rbNode[K, V]) (blackHeight int, ok bool, reason string) {
	if n == nil {
		return 1, true, ""
	}
	if n.color == rbRed {
		if !isBlack(n.left) || !isBlack(n.right) {
			return 0, false, "red node with red child"
		}
	}
	if n.left != nil && (n.left.parent != n || !t.less(n.left.k, n.k)) {
		return 0, false, "left child parent/order violation"
	}
	if n.right != nil && (n.right.parent != n || !t.less(n.k, n.right.k)) {
		return 0, false, "right child parent/order violation"
	}
	lh, ok, reason := t.checkNode(n.left)
	if !ok {
		return 0, false, reason
	}
	rh, ok, reason := t.checkNode(n.right)
	if !ok {
		return 0, false, reason
	}
	if lh != rh {
		return 0, false, "black height mismatch"
	}
	if n.color == rbBlack {
		lh++
	}
	return lh, true, ""
}
