// Package containers implements the node-local concurrent data structures
// that back every HCL distributed container (paper Section III-D): a
// cuckoo hash map (unordered map/set partitions), a lock-free skip list and
// a red-black tree (ordered map/set partitions), a Michael–Scott FIFO queue,
// and skip-list / binary-heap priority queues. These are the structures the
// RPC handlers mutate on the target node, so they must tolerate fully
// concurrent multi-writer multi-reader access.
package containers

import (
	"hash/maphash"
	"math/bits"
	"sync/atomic"
)

// Hasher computes a 64-bit hash of a key. The library uses two independent
// levels of hashing, as the paper describes: a stable cross-process hash to
// choose the partition, and fast per-process hashes inside the partition.
type Hasher[K comparable] func(K) uint64

// NewHasher returns a fast per-process hasher with its own random seed.
// Two calls return independent hash functions — exactly what cuckoo
// hashing needs.
func NewHasher[K comparable]() Hasher[K] {
	seed := maphash.MakeSeed()
	return func(k K) uint64 { return maphash.Comparable(seed, k) }
}

// Mix64 is a splitmix64 finalizer used to derive secondary hashes and
// sequence-number tie-breakers.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rng is a tiny lock-free pseudo-random source for skip-list levels.
type rng struct {
	state atomic.Uint64
}

func newRNG(seed uint64) *rng {
	r := &rng{}
	r.state.Store(seed | 1)
	return r
}

// next returns the next pseudo-random value; contention-safe.
func (r *rng) next() uint64 {
	for {
		old := r.state.Load()
		nxt := Mix64(old)
		if r.state.CompareAndSwap(old, nxt) {
			return nxt
		}
	}
}

// randomLevel draws a geometric(1/2) level in [1, max].
func (r *rng) randomLevel(max int) int {
	lvl := bits.TrailingZeros64(r.next()|1<<(max-1)) + 1
	if lvl > max {
		lvl = max
	}
	return lvl
}
