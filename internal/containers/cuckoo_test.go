package containers

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestCuckooBasicOps(t *testing.T) {
	m := NewCuckooMap[string, int]()
	if m.Len() != 0 {
		t.Fatal("new map not empty")
	}
	if !m.Insert("a", 1) {
		t.Fatal("first insert should be new")
	}
	if m.Insert("a", 2) {
		t.Fatal("second insert of same key should be an update")
	}
	if v, ok := m.Find("a"); !ok || v != 2 {
		t.Fatalf("Find(a) = %d,%v", v, ok)
	}
	if _, ok := m.Find("b"); ok {
		t.Fatal("Find of absent key")
	}
	if !m.Contains("a") || m.Contains("zz") {
		t.Fatal("Contains")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
	if !m.Delete("a") {
		t.Fatal("Delete present key")
	}
	if m.Delete("a") {
		t.Fatal("Delete absent key")
	}
	if m.Len() != 0 {
		t.Fatalf("Len after delete = %d", m.Len())
	}
}

func TestCuckooDefaultCapacity(t *testing.T) {
	m := NewCuckooMap[int, int]()
	if m.Capacity() != 2*DefaultBuckets {
		t.Fatalf("Capacity = %d, want %d", m.Capacity(), 2*DefaultBuckets)
	}
}

func TestCuckooGrowsUnderLoad(t *testing.T) {
	m := NewCuckooMapSize[int, int](8)
	const n = 10_000
	for i := 0; i < n; i++ {
		if !m.Insert(i, i*i) {
			t.Fatalf("Insert(%d) reported update", i)
		}
	}
	if m.Len() != n {
		t.Fatalf("Len = %d", m.Len())
	}
	if lf := m.LoadFactor(); lf > 0.75 {
		t.Fatalf("load factor %f above threshold after growth", lf)
	}
	for i := 0; i < n; i++ {
		if v, ok := m.Find(i); !ok || v != i*i {
			t.Fatalf("Find(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestCuckooReserve(t *testing.T) {
	m := NewCuckooMap[int, int]()
	m.Reserve(100_000)
	if m.Capacity()*3/4 < 100_000 {
		t.Fatalf("Capacity %d too small after Reserve", m.Capacity())
	}
	before := m.Capacity()
	for i := 0; i < 100_000; i++ {
		m.Insert(i, i)
	}
	if m.Capacity() != before {
		t.Fatal("Reserve should have pre-sized the table")
	}
}

func TestCuckooRange(t *testing.T) {
	m := NewCuckooMap[int, int]()
	want := map[int]int{}
	for i := 0; i < 500; i++ {
		m.Insert(i, i+1000)
		want[i] = i + 1000
	}
	got := map[int]int{}
	m.Range(func(k, v int) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range[%d] = %d, want %d", k, got[k], v)
		}
	}
	// Early termination.
	visits := 0
	m.Range(func(int, int) bool { visits++; return false })
	if visits != 1 {
		t.Fatalf("early-stop Range made %d visits", visits)
	}
}

func TestCuckooUpdateKeepsCount(t *testing.T) {
	m := NewCuckooMap[int, string]()
	for i := 0; i < 100; i++ {
		m.Insert(7, fmt.Sprint(i))
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d after repeated same-key inserts", m.Len())
	}
	if v, _ := m.Find(7); v != "99" {
		t.Fatalf("latest value = %q", v)
	}
}

// Property: the cuckoo map agrees with a builtin map under a random
// sequence of inserts, deletes, and finds.
func TestCuckooQuickAgainstModel(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint16
		Val  int32
	}
	prop := func(ops []op) bool {
		m := NewCuckooMapSize[uint16, int32](8)
		model := map[uint16]int32{}
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0:
				_, existed := model[o.Key]
				model[o.Key] = o.Val
				if m.Insert(o.Key, o.Val) != !existed {
					return false
				}
			case 1:
				_, existed := model[o.Key]
				delete(model, o.Key)
				if m.Delete(o.Key) != existed {
					return false
				}
			case 2:
				mv, mok := model[o.Key]
				gv, gok := m.Find(o.Key)
				if mok != gok || (mok && mv != gv) {
					return false
				}
			}
		}
		return m.Len() == len(model)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCuckooConcurrentDistinctKeys(t *testing.T) {
	m := NewCuckooMapSize[int, int](8)
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			base := w * per
			for i := 0; i < per; i++ {
				if !m.Insert(base+i, base+i) {
					t.Errorf("Insert(%d) saw duplicate", base+i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", m.Len(), workers*per)
	}
	for i := 0; i < workers*per; i++ {
		if v, ok := m.Find(i); !ok || v != i {
			t.Fatalf("Find(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestCuckooConcurrentSameKeyAlwaysConsistent(t *testing.T) {
	// The paper: "multiple insertions on the same key [are] always
	// consistent". Hammer one key from many writers; the final value
	// must be one of the written values and Len must be exactly 1.
	m := NewCuckooMap[string, int]()
	const workers = 8
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Insert("hot", w*10_000+i)
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	v, ok := m.Find("hot")
	if !ok || v < 0 || v >= workers*10_000 {
		t.Fatalf("final value %d out of range", v)
	}
}

func TestCuckooConcurrentMixedWorkload(t *testing.T) {
	m := NewCuckooMapSize[int, int](16)
	const workers = 8
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 3000; i++ {
				k := rng.Intn(512)
				switch rng.Intn(3) {
				case 0:
					m.Insert(k, k)
				case 1:
					m.Delete(k)
				case 2:
					if v, ok := m.Find(k); ok && v != k {
						t.Errorf("Find(%d) returned %d", k, v)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Every surviving entry must map k -> k, and Len must agree with a
	// full scan.
	scan := 0
	m.Range(func(k, v int) bool {
		scan++
		if v != k {
			t.Errorf("entry %d -> %d", k, v)
		}
		return true
	})
	if scan != m.Len() {
		t.Fatalf("scan found %d entries, Len = %d", scan, m.Len())
	}
}

func TestCuckooDisplacementPath(t *testing.T) {
	// A tiny table forces displacement chains and growth quickly.
	m := NewCuckooMapSize[uint64, uint64](8)
	for i := uint64(0); i < 2000; i++ {
		m.Insert(i, i)
	}
	for i := uint64(0); i < 2000; i++ {
		if v, ok := m.Find(i); !ok || v != i {
			t.Fatalf("lost key %d after displacement/growth (got %d,%v)", i, v, ok)
		}
	}
}

func TestMix64(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		h := Mix64(i)
		if seen[h] {
			t.Fatalf("Mix64 collision at %d", i)
		}
		seen[h] = true
	}
	if Mix64(0) == 0 {
		t.Fatal("Mix64(0) should not be 0")
	}
}

func TestNewHasherIndependence(t *testing.T) {
	h1 := NewHasher[int]()
	h2 := NewHasher[int]()
	same := 0
	for i := 0; i < 256; i++ {
		if h1(i) == h2(i) {
			same++
		}
	}
	if same > 4 {
		t.Fatalf("two hashers agreed on %d/256 inputs; seeds not independent", same)
	}
	// Deterministic within one hasher.
	for i := 0; i < 16; i++ {
		if h1(i) != h1(i) {
			t.Fatal("hasher not deterministic")
		}
	}
}
