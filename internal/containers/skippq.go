package containers

import "sync/atomic"

// SkipPQ is a lock-free priority queue built on the skip list, in the
// Shavit–Lotan style: push inserts an ordered node; pop-min marks the
// first live node logically deleted (one CAS) and lets traversals unlink
// it afterwards. It substitutes for the paper's multi-dimensional-list
// queue (Zhang & Dechev); both give O(log n) push, amortized O(1) pop-min,
// and fully concurrent MWMR access (see DESIGN.md). Duplicate priorities
// are permitted: each element carries a unique sequence number that breaks
// ties in arrival order — the paper's "resolve conflicts based on arrival
// time and priority".
type SkipPQ[T any] struct {
	list *SkipList[pqKey[T], struct{}]
	seq  atomic.Uint64
	pops atomic.Uint64
}

type pqKey[T any] struct {
	v   T
	seq uint64
}

// NewSkipPQ returns an empty priority queue ordered by less (min first).
func NewSkipPQ[T any](less func(a, b T) bool) *SkipPQ[T] {
	keyLess := func(a, b pqKey[T]) bool {
		if less(a.v, b.v) {
			return true
		}
		if less(b.v, a.v) {
			return false
		}
		return a.seq < b.seq
	}
	return &SkipPQ[T]{list: NewSkipList[pqKey[T], struct{}](keyLess)}
}

// Len reports the number of live elements.
func (q *SkipPQ[T]) Len() int { return q.list.Len() }

// Push inserts v.
func (q *SkipPQ[T]) Push(v T) {
	q.list.Insert(pqKey[T]{v: v, seq: q.seq.Add(1)}, struct{}{})
}

// PopMin removes and returns the minimum element.
func (q *SkipPQ[T]) PopMin() (T, bool) {
	var zero T
	s := q.list
	for {
		curr := s.head.next[0].Load().next
		for curr != s.tail {
			cs := curr.next[0].Load()
			if !cs.marked {
				// Try to claim this node by marking level 0.
				if curr.next[0].CompareAndSwap(cs, &slSucc[pqKey[T], struct{}]{next: cs.next, marked: true}) {
					s.count.Add(-1)
					// Mark upper levels so traversals can snip them.
					for lvl := curr.level - 1; lvl >= 1; lvl-- {
						ns := curr.next[lvl].Load()
						for !ns.marked {
							curr.next[lvl].CompareAndSwap(ns, &slSucc[pqKey[T], struct{}]{next: ns.next, marked: true})
							ns = curr.next[lvl].Load()
						}
					}
					if q.pops.Add(1)%64 == 0 {
						q.Purge() // periodic background-style compaction
					}
					return curr.k.v, true
				}
				// Lost the race; restart from the head.
				break
			}
			curr = cs.next
		}
		if curr == s.tail {
			return zero, false
		}
	}
}

// PeekMin returns the minimum element without removing it.
func (q *SkipPQ[T]) PeekMin() (T, bool) {
	k, _, ok := q.list.Min()
	if !ok {
		var zero T
		return zero, false
	}
	return k.v, true
}

// Purge physically unlinks logically-deleted nodes — the paper's
// background purge methodology, runnable from a helper goroutine or
// invoked periodically by PopMin.
func (q *SkipPQ[T]) Purge() {
	var preds, succs [slMaxLevel]*slNode[pqKey[T], struct{}]
	var psp [slMaxLevel]*slSucc[pqKey[T], struct{}]
	s := q.list
	// A single find over the minimum key snips every marked prefix node;
	// walking the live minimum is enough to compact the hot front.
	if curr := s.head.next[0].Load().next; curr != s.tail {
		s.find(curr.k, &preds, &succs, &psp)
	}
}
