package containers

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestMSQueueFIFO(t *testing.T) {
	q := NewMSQueue[int]()
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty queue")
	}
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	if v, ok := q.Peek(); !ok || v != 0 {
		t.Fatalf("Peek = %d,%v", v, ok)
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop %d = %d,%v", i, v, ok)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

func TestMSQueueInterleaved(t *testing.T) {
	q := NewMSQueue[int]()
	next := 0
	expect := 0
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10_000; i++ {
		if rng.Intn(2) == 0 || next == expect {
			q.Push(next)
			next++
		} else {
			v, ok := q.Pop()
			if !ok || v != expect {
				t.Fatalf("Pop = %d,%v, want %d", v, ok, expect)
			}
			expect++
		}
	}
}

func TestMSQueueConcurrentMPMC(t *testing.T) {
	q := NewMSQueue[int]()
	const producers, consumers, per = 4, 4, 5000
	var wg sync.WaitGroup
	results := make(chan int, producers*per)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Push(p*per + i)
			}
		}(p)
	}
	var cg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				if v, ok := q.Pop(); ok {
					results <- v
					continue
				}
				select {
				case <-done:
					// Drain any stragglers before exiting.
					for {
						v, ok := q.Pop()
						if !ok {
							return
						}
						results <- v
					}
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	cg.Wait()
	close(results)
	seen := make(map[int]bool, producers*per)
	for v := range results {
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
	}
	if len(seen) != producers*per {
		t.Fatalf("popped %d values, want %d", len(seen), producers*per)
	}
}

func TestMSQueuePerProducerOrderPreserved(t *testing.T) {
	// FIFO per producer: a single consumer must see each producer's
	// values in increasing order.
	q := NewMSQueue[[2]int]()
	const producers, per = 4, 3000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Push([2]int{p, i})
			}
		}(p)
	}
	wg.Wait()
	last := map[int]int{}
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		p, i := v[0], v[1]
		if prev, ok := last[p]; ok && i != prev+1 {
			t.Fatalf("producer %d order broken: %d after %d", p, i, prev)
		}
		last[p] = i
	}
}

func TestSkipPQOrdering(t *testing.T) {
	pq := NewSkipPQ[int](intLess)
	if _, ok := pq.PopMin(); ok {
		t.Fatal("pop from empty pq")
	}
	if _, ok := pq.PeekMin(); ok {
		t.Fatal("peek on empty pq")
	}
	vals := rand.New(rand.NewSource(6)).Perm(2000)
	for _, v := range vals {
		pq.Push(v)
	}
	if pq.Len() != 2000 {
		t.Fatalf("Len = %d", pq.Len())
	}
	if v, ok := pq.PeekMin(); !ok || v != 0 {
		t.Fatalf("PeekMin = %d,%v", v, ok)
	}
	for i := 0; i < 2000; i++ {
		v, ok := pq.PopMin()
		if !ok || v != i {
			t.Fatalf("PopMin %d = %d,%v", i, v, ok)
		}
	}
	if pq.Len() != 0 {
		t.Fatalf("Len after drain = %d", pq.Len())
	}
}

func TestSkipPQDuplicatePrioritiesFIFO(t *testing.T) {
	// Equal priorities pop in arrival order (sequence tie-break).
	type job struct {
		pri int
		id  int
	}
	pq := NewSkipPQ[job](func(a, b job) bool { return a.pri < b.pri })
	for i := 0; i < 100; i++ {
		pq.Push(job{pri: 7, id: i})
	}
	for i := 0; i < 100; i++ {
		j, ok := pq.PopMin()
		if !ok || j.id != i {
			t.Fatalf("duplicate-priority order: got id %d at pop %d", j.id, i)
		}
	}
}

func TestSkipPQConcurrent(t *testing.T) {
	pq := NewSkipPQ[int](intLess)
	const producers, per = 8, 2000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				pq.Push(p*per + i)
			}
		}(p)
	}
	wg.Wait()
	// Concurrent pops must return each value once; collect and verify.
	var mu sync.Mutex
	got := make([]int, 0, producers*per)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := pq.PopMin()
				if !ok {
					return
				}
				mu.Lock()
				got = append(got, v)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(got) != producers*per {
		t.Fatalf("popped %d values", len(got))
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("missing or duplicated value at %d: %d", i, v)
		}
	}
}

func TestSkipPQPopMinIsGloballyMinAtQuiescence(t *testing.T) {
	pq := NewSkipPQ[int](intLess)
	for _, v := range []int{42, 7, 99, 1, 55} {
		pq.Push(v)
	}
	order := []int{1, 7, 42, 55, 99}
	for _, want := range order {
		if v, _ := pq.PopMin(); v != want {
			t.Fatalf("PopMin = %d, want %d", v, want)
		}
	}
}

func TestHeapPQMatchesSkipPQ(t *testing.T) {
	prop := func(vals []int16) bool {
		h := NewHeapPQ[int16](func(a, b int16) bool { return a < b })
		s := NewSkipPQ[int16](func(a, b int16) bool { return a < b })
		for _, v := range vals {
			h.Push(v)
			s.Push(v)
		}
		if h.Len() != s.Len() {
			return false
		}
		for {
			hv, hok := h.PopMin()
			sv, sok := s.PopMin()
			if hok != sok {
				return false
			}
			if !hok {
				return true
			}
			if hv != sv {
				return false
			}
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapPQBasics(t *testing.T) {
	h := NewHeapPQ[int](intLess)
	if _, ok := h.PopMin(); ok {
		t.Fatal("empty pop")
	}
	if _, ok := h.PeekMin(); ok {
		t.Fatal("empty peek")
	}
	h.Push(5)
	h.Push(1)
	h.Push(3)
	if v, ok := h.PeekMin(); !ok || v != 1 {
		t.Fatalf("PeekMin = %d", v)
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
	for _, want := range []int{1, 3, 5} {
		if v, _ := h.PopMin(); v != want {
			t.Fatalf("PopMin = %d, want %d", v, want)
		}
	}
}

func TestHeapPQConcurrent(t *testing.T) {
	h := NewHeapPQ[int](intLess)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Push(w*1000 + i)
			}
		}(w)
	}
	wg.Wait()
	if h.Len() != 8000 {
		t.Fatalf("Len = %d", h.Len())
	}
	prev := -1
	for {
		v, ok := h.PopMin()
		if !ok {
			break
		}
		if v <= prev {
			t.Fatalf("heap order violated: %d after %d", v, prev)
		}
		prev = v
	}
}

func TestSkipPQPurge(t *testing.T) {
	pq := NewSkipPQ[int](intLess)
	for i := 0; i < 1000; i++ {
		pq.Push(i)
	}
	for i := 0; i < 500; i++ {
		pq.PopMin()
	}
	pq.Purge()
	if v, ok := pq.PeekMin(); !ok || v != 500 {
		t.Fatalf("PeekMin after purge = %d,%v", v, ok)
	}
	if pq.Len() != 500 {
		t.Fatalf("Len = %d", pq.Len())
	}
}
