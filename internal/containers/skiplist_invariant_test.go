package containers

import (
	"math/rand"
	"sync"
	"testing"
)

// slAudit walks level 0 (including logically-deleted nodes) and compares
// the live-node count against Len. This invariant caught a real bug: an
// insert could CAS onto a deleted predecessor's frozen (marked) pointer
// and link the new node into a detached chain, losing it.
func slAudit(t *testing.T, s *SkipList[int, int], round int) {
	t.Helper()
	unmarked, marked := 0, 0
	for curr := s.head.next[0].Load().next; curr != s.tail; curr = curr.next[0].Load().next {
		if curr.next[0].Load().marked {
			marked++
		} else {
			unmarked++
		}
	}
	if unmarked != s.Len() {
		t.Fatalf("round %d: %d live nodes reachable, Len=%d (%d marked stragglers)",
			round, unmarked, s.Len(), marked)
	}
}

// TestSkipListReachabilityInvariant hammers insert/delete on a small key
// space and verifies at quiescence that every counted node is reachable.
func TestSkipListReachabilityInvariant(t *testing.T) {
	for round := 0; round < 120; round++ {
		s := NewSkipList[int, int](intLess)
		const keys = 64
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*100 + w)))
				for i := 0; i < 1200; i++ {
					k := rng.Intn(keys)
					if rng.Intn(2) == 0 {
						s.Insert(k, k)
					} else {
						s.Delete(k)
					}
				}
			}(w)
		}
		wg.Wait()
		slAudit(t, s, round)
	}
}

// TestSkipListReachabilityPerKeySerialized is the same hammer with one
// mutex per key, isolating cross-key interference (the original bug
// reproduced even in this mode: the lost node's *predecessor* belonged to
// a different key).
func TestSkipListReachabilityPerKeySerialized(t *testing.T) {
	for round := 0; round < 120; round++ {
		s := NewSkipList[int, int](intLess)
		const keys = 64
		var locks [keys]sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*100 + w)))
				for i := 0; i < 1200; i++ {
					k := rng.Intn(keys)
					locks[k].Lock()
					if rng.Intn(2) == 0 {
						s.Insert(k, k)
					} else {
						s.Delete(k)
					}
					locks[k].Unlock()
				}
			}(w)
		}
		wg.Wait()
		slAudit(t, s, round)
	}
}
