package isx

import (
	"testing"

	"hcl/internal/cluster"
	"hcl/internal/core"
	"hcl/internal/fabric"
	"hcl/internal/fabric/simfab"
)

func newWorld(t testing.TB, nodes, ranksPerNode int) (*cluster.World, *core.Runtime) {
	t.Helper()
	prov := simfab.New(nodes, fabric.DefaultCostModel())
	t.Cleanup(func() { prov.Close() })
	w := cluster.MustWorld(prov, cluster.Block(nodes, nodes*ranksPerNode))
	return w, core.NewRuntime(w)
}

func TestBucketOfCoversAllNodes(t *testing.T) {
	const nodes, keyRange = 8, 1 << 16
	seen := make([]bool, nodes)
	for k := 0; k < keyRange; k += 97 {
		b := bucketOf(int64(k), keyRange, nodes)
		if b < 0 || b >= nodes {
			t.Fatalf("bucket %d out of range for key %d", b, k)
		}
		seen[b] = true
	}
	for n, s := range seen {
		if !s {
			t.Fatalf("bucket %d never chosen", n)
		}
	}
	if bucketOf(int64(keyRange-1), keyRange, nodes) != nodes-1 {
		t.Fatal("max key must land in last bucket")
	}
}

func TestKeysDeterministic(t *testing.T) {
	cfg := Config{KeysPerRank: 64, KeyRange: 1000, Seed: 42}
	cfg.fill()
	a := genKeys(cfg, 3, 4)
	b := genKeys(cfg, 3, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("key generation not deterministic")
		}
	}
	c := genKeys(cfg, 4, 4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different ranks generated identical keys")
	}
}

func TestRunHCLSortsEverything(t *testing.T) {
	w, rt := newWorld(t, 4, 2)
	cfg := Config{KeysPerRank: 200, KeyRange: 1 << 20, Seed: 7}
	res, err := RunHCL(rt, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sorted {
		t.Fatal("HCL output not sorted")
	}
	if want := 200 * w.NumRanks(); res.TotalKeys != want {
		t.Fatalf("TotalKeys = %d, want %d", res.TotalKeys, want)
	}
	if res.Makespan <= 0 {
		t.Fatal("makespan must be positive")
	}
}

func TestRunBCLSortsEverything(t *testing.T) {
	w, _ := newWorld(t, 4, 2)
	cfg := Config{KeysPerRank: 200, KeyRange: 1 << 20, Seed: 7}
	res, err := RunBCL(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sorted {
		t.Fatal("BCL output not sorted")
	}
	if want := 200 * w.NumRanks(); res.TotalKeys != want {
		t.Fatalf("TotalKeys = %d, want %d", res.TotalKeys, want)
	}
}

func TestHCLBeatsBCL(t *testing.T) {
	// The paper's Figure 7a headline: HCL finishes ISx well ahead of BCL
	// at every scale. Run both on identical fresh worlds and compare
	// modelled makespans.
	cfg := Config{KeysPerRank: 300, KeyRange: 1 << 20, Seed: 11}

	wH, rtH := newWorld(t, 4, 2)
	hcl, err := RunHCL(rtH, wH, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wB, _ := newWorld(t, 4, 2)
	bcl, err := RunBCL(wB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hcl.Makespan >= bcl.Makespan {
		t.Fatalf("HCL (%v) should beat BCL (%v)", hcl.Makespan, bcl.Makespan)
	}
	t.Logf("ISx: HCL %v vs BCL %v (%.1fx)", hcl.Makespan, bcl.Makespan,
		float64(bcl.Makespan)/float64(hcl.Makespan))
}

func TestInt64Codec(t *testing.T) {
	buf := make([]byte, 8)
	for _, v := range []int64{0, 1, -1, 1 << 40, -(1 << 40), 123456789} {
		putInt64(buf, v)
		if got := getInt64(buf); got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	}
}
