// Package isx reproduces the ISx integer-sort mini-application (Hanebutte
// & Hemstad, PGAS'15) used in the paper's Figure 7a. ISx is a bucket sort
// of uniformly distributed keys in two phases: an all-to-all key exchange
// (each key is routed to the node owning its bucket) followed by a local
// sort of each bucket.
//
// Two implementations run on the same cluster:
//
//   - HCL: each node hosts an HCL::priority_queue; ranks push their keys
//     (in vector batches, one invocation per batch) and the data arrives
//     *already sorted* — the local sort disappears behind the network,
//     which is the optimization the paper credits for HCL's win;
//   - BCL: each node hosts a BCL circular queue; ranks push keys with the
//     client-side CAS protocol and the receiving node must still sort its
//     bucket afterwards.
package isx

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"hcl/internal/bcl"
	"hcl/internal/cluster"
	"hcl/internal/core"
)

// Config parameterizes one ISx run.
type Config struct {
	// KeysPerRank is the weak-scaling constant (paper default 1<<27 per
	// rank on Ares; scale down for in-process runs).
	KeysPerRank int
	// KeyRange bounds generated keys in [0, KeyRange).
	KeyRange int
	// Seed makes the generated keys reproducible.
	Seed int64
	// BatchSize is the vector-push granularity for the HCL exchange.
	BatchSize int
}

func (c *Config) fill() {
	if c.KeysPerRank <= 0 {
		c.KeysPerRank = 1 << 10
	}
	if c.KeyRange <= 0 {
		c.KeyRange = 1 << 27
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 128
	}
}

// Result summarizes one run.
type Result struct {
	// Makespan is the modelled end-to-end time.
	Makespan time.Duration
	// TotalKeys is the number of keys sorted.
	TotalKeys int
	// Sorted reports whether every bucket drained in ascending order and
	// bucket boundaries were respected.
	Sorted bool
}

// genKeys returns rank r's deterministic uniform keys.
func genKeys(cfg Config, rank, _ int) []int64 {
	rng := rand.New(rand.NewSource(cfg.Seed*7919 + int64(rank)))
	keys := make([]int64, cfg.KeysPerRank)
	for i := range keys {
		keys[i] = int64(rng.Intn(cfg.KeyRange))
	}
	return keys
}

// bucketOf routes a key to its owning node: fixed-width buckets over the
// key range, one bucket per node (the ISx default).
func bucketOf(key int64, keyRange, nodes int) int {
	b := int(key) * nodes / keyRange
	if b >= nodes {
		b = nodes - 1
	}
	return b
}

// RunHCL executes ISx on HCL priority queues.
func RunHCL(rt *core.Runtime, w *cluster.World, cfg Config) (Result, error) {
	cfg.fill()
	nodes := w.NumNodes()
	queues := make([]*core.PriorityQueue[int64], nodes)
	for n := 0; n < nodes; n++ {
		pq, err := core.NewPriorityQueue[int64](rt, fmt.Sprintf("isx.bucket.%d", n),
			core.NaturalLess[int64](), core.WithServers([]int{n}))
		if err != nil {
			return Result{}, err
		}
		queues[n] = pq
	}
	w.ResetClocks()

	// Phase 1: all-to-all key exchange. Keys land pre-sorted in the
	// destination priority queue, so there is no phase-2 sort.
	errs := make([]error, w.NumRanks())
	w.Run(func(r *cluster.Rank) {
		keys := genKeys(cfg, r.ID(), nodes)
		batches := make([][]int64, nodes)
		for _, k := range keys {
			b := bucketOf(k, cfg.KeyRange, nodes)
			batches[b] = append(batches[b], k)
			if len(batches[b]) >= cfg.BatchSize {
				if err := queues[b].PushMulti(r, batches[b]); err != nil {
					errs[r.ID()] = err
					return
				}
				batches[b] = batches[b][:0]
			}
		}
		for b, rest := range batches {
			if len(rest) > 0 {
				if err := queues[b].PushMulti(r, rest); err != nil {
					errs[r.ID()] = err
					return
				}
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	w.Barrier()

	// Phase 2: each node drains its bucket — already in order. One rank
	// per node does the drain, as in ISx.
	total := 0
	sortedFlags := make([]bool, nodes)
	totals := make([]int, nodes)
	w.Run(func(r *cluster.Rank) {
		locals := w.RanksOnNode(r.Node())
		if len(locals) == 0 || locals[0].ID() != r.ID() {
			return // only the first rank on each node drains
		}
		pq := queues[r.Node()]
		prev := int64(-1)
		count := 0
		ok := true
		for {
			vals, err := pq.PopMulti(r, 1024)
			if err != nil {
				errs[r.ID()] = err
				return
			}
			if len(vals) == 0 {
				break
			}
			for _, v := range vals {
				if v < prev {
					ok = false
				}
				prev = v
				count++
			}
		}
		sortedFlags[r.Node()] = ok
		totals[r.Node()] = count
	})
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	sorted := true
	for n := 0; n < nodes; n++ {
		if !sortedFlags[n] {
			sorted = false
		}
		total += totals[n]
	}
	return Result{
		Makespan:  time.Duration(w.Makespan()),
		TotalKeys: total,
		Sorted:    sorted,
	}, nil
}

// RunBCL executes ISx on BCL circular queues plus a local sort.
func RunBCL(w *cluster.World, cfg Config) (Result, error) {
	cfg.fill()
	nodes := w.NumNodes()
	ranksPerNode := w.NumRanks() / nodes
	if ranksPerNode == 0 {
		ranksPerNode = 1
	}
	queues := make([]*bcl.Queue, nodes)
	for n := 0; n < nodes; n++ {
		capacity := cfg.KeysPerRank * w.NumRanks() * 2 / nodes
		if capacity < 1024 {
			capacity = 1024
		}
		q, err := bcl.NewQueue(w, bcl.QueueConfig{Host: n, Capacity: capacity, SlotSize: 16})
		if err != nil {
			return Result{}, err
		}
		queues[n] = q
	}
	w.ResetClocks()

	errs := make([]error, w.NumRanks())
	w.Run(func(r *cluster.Rank) {
		keys := genKeys(cfg, r.ID(), nodes)
		buf := make([]byte, 8)
		for _, k := range keys {
			b := bucketOf(k, cfg.KeyRange, nodes)
			putInt64(buf, k)
			if err := queues[b].Push(r, buf); err != nil {
				errs[r.ID()] = err
				return
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	w.Barrier()

	total := 0
	sorted := true
	totals := make([]int, nodes)
	sortedFlags := make([]bool, nodes)
	w.Run(func(r *cluster.Rank) {
		locals := w.RanksOnNode(r.Node())
		if len(locals) == 0 || locals[0].ID() != r.ID() {
			return
		}
		q := queues[r.Node()]
		var bucket []int64
		for {
			v, ok, err := q.Pop(r)
			if err != nil {
				errs[r.ID()] = err
				return
			}
			if !ok {
				break
			}
			bucket = append(bucket, getInt64(v))
		}
		// Phase 2 for BCL: the explicit local sort HCL avoids. The
		// modelled cost is n log n local operations.
		sort.Slice(bucket, func(i, j int) bool { return bucket[i] < bucket[j] })
		chargeLocalSort(r, len(bucket))
		ok := true
		for i := 1; i < len(bucket); i++ {
			if bucket[i-1] > bucket[i] {
				ok = false
			}
		}
		sortedFlags[r.Node()] = ok
		totals[r.Node()] = len(bucket)
	})
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	for n := 0; n < nodes; n++ {
		total += totals[n]
		if !sortedFlags[n] {
			sorted = false
		}
	}
	return Result{
		Makespan:  time.Duration(w.Makespan()),
		TotalKeys: total,
		Sorted:    sorted,
	}, nil
}

func putInt64(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getInt64(b []byte) int64 {
	var v int64
	for i := 0; i < 8 && i < len(b); i++ {
		v |= int64(b[i]) << (8 * i)
	}
	return v
}

// chargeLocalSort advances the draining rank's clock by a modelled
// n*log2(n) comparison-sort cost.
func chargeLocalSort(r *cluster.Rank, n int) {
	if n <= 1 {
		return
	}
	steps := 0
	for m := n; m > 1; m >>= 1 {
		steps++
	}
	const nsPerCompare = 12 // calibrated to commodity CPU sort throughput
	r.Clock().Advance(int64(n) * int64(steps) * nsPerCompare)
}
