package meraculous

import (
	"time"

	"hcl/internal/bcl"
	"hcl/internal/cluster"
	"hcl/internal/core"
	"hcl/internal/databox"
)

// Result summarizes one kernel run.
type Result struct {
	// Makespan is the modelled end-to-end time.
	Makespan time.Duration
	// DistinctKmers is the number of distinct k-mers observed (counting
	// kernel) or graph nodes (contig kernel).
	DistinctKmers int
	// TotalKmers is the number of k-mer occurrences processed.
	TotalKmers int
	// Contigs and ContigBases summarize the assembly (contig kernel).
	Contigs     int
	ContigBases int
}

// K is the k-mer length used by both kernels (Meraculous uses large odd
// k; 21 keeps codes in uint64 comfortably).
const K = 21

// CountKmersHCL runs the k-mer counting kernel on an HCL unordered map:
// every occurrence is one Merge invocation — a server-side atomic
// increment in a single round trip.
func CountKmersHCL(rt *core.Runtime, w *cluster.World, g *Genome) (Result, error) {
	m, err := core.NewUnorderedMap[uint64, uint32](rt, "meraculous.kmers")
	if err != nil {
		return Result{}, err
	}
	m.SetMerge(func(old, incoming uint32) uint32 { return old + incoming })
	w.ResetClocks()

	errs := make([]error, w.NumRanks())
	totals := make([]int, w.NumRanks())
	w.Run(func(r *cluster.Rank) {
		lo, hi := g.ReadShard(r.ID(), w.NumRanks())
		count := 0
		g.ForEachKmer(K, lo, hi, func(code uint64) {
			if errs[r.ID()] != nil {
				return
			}
			if _, err := m.Merge(r, code, 1); err != nil {
				errs[r.ID()] = err
				return
			}
			count++
		})
		totals[r.ID()] = count
	})
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	total := 0
	for _, c := range totals {
		total += c
	}
	distinct, err := m.Size(w.Rank(0))
	if err != nil {
		return Result{}, err
	}
	return Result{
		Makespan:      time.Duration(w.Makespan()),
		DistinctKmers: distinct,
		TotalKmers:    total,
	}, nil
}

// CountKmersBCL runs the counting kernel on the BCL hashmap. The
// client-side model has no server-side combine: each occurrence is a
// remote Find (reads) followed by the three-verb Insert, and concurrent
// increments of one k-mer can lose updates — both costs the paper
// attributes to the imperative approach. To keep the histogram exact for
// verification, ranks pre-aggregate their local shard (as real BCL codes
// do) and only the per-shard totals flow through the map.
func CountKmersBCL(w *cluster.World, g *Genome) (Result, error) {
	m, err := bcl.NewHashMap(w, bcl.HashMapConfig{
		BucketsPerPartition: 1 << 16,
		SlotSize:            16,
	})
	if err != nil {
		return Result{}, err
	}
	w.ResetClocks()

	errs := make([]error, w.NumRanks())
	totals := make([]int, w.NumRanks())
	kbox := databox.New[uint64]()
	w.Run(func(r *cluster.Rank) {
		lo, hi := g.ReadShard(r.ID(), w.NumRanks())
		// Local pre-aggregation of the shard.
		local := make(map[uint64]uint32)
		count := 0
		g.ForEachKmer(K, lo, hi, func(code uint64) {
			local[code]++
			count++
		})
		totals[r.ID()] = count
		// Remote accumulate: read-modify-write per distinct k-mer.
		for code, c := range local {
			kb, err := kbox.Encode(code)
			if err != nil {
				errs[r.ID()] = err
				return
			}
			cur, _, err := m.Find(r, kb)
			if err != nil {
				errs[r.ID()] = err
				return
			}
			var prev uint32
			if len(cur) >= 4 {
				prev = uint32(cur[0]) | uint32(cur[1])<<8 | uint32(cur[2])<<16 | uint32(cur[3])<<24
			}
			next := prev + c
			val := []byte{byte(next), byte(next >> 8), byte(next >> 16), byte(next >> 24)}
			if err := m.Insert(r, kb, val); err != nil {
				errs[r.ID()] = err
				return
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	total := 0
	for _, c := range totals {
		total += c
	}
	return Result{
		Makespan:   time.Duration(w.Makespan()),
		TotalKmers: total,
	}, nil
}

// Extension records, per graph k-mer, how often each base follows it —
// the de Bruijn adjacency the contig kernel traverses.
type Extension struct {
	Next [4]uint32
}

// CountsFromReads builds the extension map locally (used by tests to
// cross-check the distributed build).
func CountsFromReads(g *Genome) map[uint64]*Extension {
	out := make(map[uint64]*Extension)
	for _, read := range g.Reads {
		for j := 0; j+K < len(read); j++ {
			code, ok := KmerCode(read[j:j+K], K)
			if !ok {
				continue
			}
			b := baseIndex(read[j+K])
			if b < 0 {
				continue
			}
			e := out[code]
			if e == nil {
				e = &Extension{}
				out[code] = e
			}
			e.Next[b]++
		}
	}
	return out
}

func baseIndex(b byte) int {
	switch b {
	case 'A':
		return 0
	case 'C':
		return 1
	case 'G':
		return 2
	case 'T':
		return 3
	}
	return -1
}

// ContigGenHCL runs the contig-generation kernel on an HCL unordered map:
// build the de Bruijn extension map with Merge invocations, then walk
// unique-extension chains with Find invocations.
func ContigGenHCL(rt *core.Runtime, w *cluster.World, g *Genome) (Result, error) {
	m, err := core.NewUnorderedMap[uint64, Extension](rt, "meraculous.graph")
	if err != nil {
		return Result{}, err
	}
	m.SetMerge(func(old, in Extension) Extension {
		for i := range old.Next {
			old.Next[i] += in.Next[i]
		}
		return old
	})
	w.ResetClocks()

	// Phase 1: distributed graph construction.
	errs := make([]error, w.NumRanks())
	w.Run(func(r *cluster.Rank) {
		lo, hi := g.ReadShard(r.ID(), w.NumRanks())
		for i := lo; i < hi; i++ {
			read := g.Reads[i]
			for j := 0; j+K < len(read); j++ {
				code, ok := KmerCode(read[j:j+K], K)
				if !ok {
					continue
				}
				b := baseIndex(read[j+K])
				if b < 0 {
					continue
				}
				var ext Extension
				ext.Next[b] = 1
				if _, err := m.Merge(r, code, ext); err != nil {
					errs[r.ID()] = err
					return
				}
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	w.Barrier()

	// Phase 2: traversal. Each rank walks chains from seed k-mers in its
	// shard: while a k-mer has a unique extension, extend the contig.
	contigs := make([]int, w.NumRanks())
	bases := make([]int, w.NumRanks())
	w.Run(func(r *cluster.Rank) {
		lo, hi := g.ReadShard(r.ID(), w.NumRanks())
		seen := make(map[uint64]bool)
		for i := lo; i < hi; i++ {
			read := g.Reads[i]
			code, ok := KmerCode(read[:K], K)
			if !ok || seen[code] {
				continue
			}
			seen[code] = true
			length := K
			cur := code
			for steps := 0; steps < 10_000; steps++ {
				ext, found, err := m.Find(r, cur)
				if err != nil {
					errs[r.ID()] = err
					return
				}
				if !found {
					break
				}
				b := uniqueNext(ext)
				if b < 0 {
					break
				}
				cur = shiftKmer(cur, b)
				if seen[cur] {
					break
				}
				seen[cur] = true
				length++
			}
			contigs[r.ID()]++
			bases[r.ID()] += length
		}
	})
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	res := Result{Makespan: time.Duration(w.Makespan())}
	for i := range contigs {
		res.Contigs += contigs[i]
		res.ContigBases += bases[i]
	}
	res.DistinctKmers, err = m.Size(w.Rank(0))
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// uniqueNext returns the single dominant extension base, or -1 when the
// k-mer is a branch or a dead end (Meraculous' UU-contig rule).
func uniqueNext(e Extension) int {
	best, count := -1, 0
	for i, c := range e.Next {
		if c > 0 {
			count++
			best = i
		}
	}
	if count == 1 {
		return best
	}
	return -1
}

// shiftKmer appends base b to a k-mer code, dropping the oldest base but
// keeping the length sentinel.
func shiftKmer(code uint64, b int) uint64 {
	body := code &^ (1 << (2 * K)) // strip sentinel
	body = (body<<2 | uint64(b)) & (1<<(2*K) - 1)
	return body | 1<<(2*K)
}

// ContigGenBCL runs the contig kernel on the BCL hashmap. Graph
// construction uses rank-private pre-aggregation plus read-modify-write
// (as in CountKmersBCL); traversal is one remote Find per step.
func ContigGenBCL(w *cluster.World, g *Genome) (Result, error) {
	m, err := bcl.NewHashMap(w, bcl.HashMapConfig{
		BucketsPerPartition: 1 << 16,
		SlotSize:            32,
	})
	if err != nil {
		return Result{}, err
	}
	kbox := databox.New[uint64]()
	w.ResetClocks()

	errs := make([]error, w.NumRanks())
	w.Run(func(r *cluster.Rank) {
		lo, hi := g.ReadShard(r.ID(), w.NumRanks())
		local := make(map[uint64]*Extension)
		for i := lo; i < hi; i++ {
			read := g.Reads[i]
			for j := 0; j+K < len(read); j++ {
				code, ok := KmerCode(read[j:j+K], K)
				if !ok {
					continue
				}
				b := baseIndex(read[j+K])
				if b < 0 {
					continue
				}
				e := local[code]
				if e == nil {
					e = &Extension{}
					local[code] = e
				}
				e.Next[b]++
			}
		}
		for code, e := range local {
			kb, err := kbox.Encode(code)
			if err != nil {
				errs[r.ID()] = err
				return
			}
			cur, _, err := m.Find(r, kb)
			if err != nil {
				errs[r.ID()] = err
				return
			}
			merged := *e
			if len(cur) >= 16 {
				for i := 0; i < 4; i++ {
					merged.Next[i] += decodeU32(cur[4*i:])
				}
			}
			out := make([]byte, 16)
			for i := 0; i < 4; i++ {
				encodeU32(out[4*i:], merged.Next[i])
			}
			if err := m.Insert(r, kb, out); err != nil {
				errs[r.ID()] = err
				return
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	w.Barrier()

	contigs := make([]int, w.NumRanks())
	bases := make([]int, w.NumRanks())
	w.Run(func(r *cluster.Rank) {
		lo, hi := g.ReadShard(r.ID(), w.NumRanks())
		seen := make(map[uint64]bool)
		for i := lo; i < hi; i++ {
			read := g.Reads[i]
			code, ok := KmerCode(read[:K], K)
			if !ok || seen[code] {
				continue
			}
			seen[code] = true
			length := K
			cur := code
			for steps := 0; steps < 10_000; steps++ {
				kb, err := kbox.Encode(cur)
				if err != nil {
					errs[r.ID()] = err
					return
				}
				raw, found, err := m.Find(r, kb)
				if err != nil {
					errs[r.ID()] = err
					return
				}
				if !found || len(raw) < 16 {
					break
				}
				var ext Extension
				for i := 0; i < 4; i++ {
					ext.Next[i] = decodeU32(raw[4*i:])
				}
				b := uniqueNext(ext)
				if b < 0 {
					break
				}
				cur = shiftKmer(cur, b)
				if seen[cur] {
					break
				}
				seen[cur] = true
				length++
			}
			contigs[r.ID()]++
			bases[r.ID()] += length
		}
	})
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	res := Result{Makespan: time.Duration(w.Makespan())}
	for i := range contigs {
		res.Contigs += contigs[i]
		res.ContigBases += bases[i]
	}
	return res, nil
}

func decodeU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func encodeU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
