package meraculous

import (
	"bytes"
	"testing"

	"hcl/internal/cluster"
	"hcl/internal/core"
	"hcl/internal/fabric"
	"hcl/internal/fabric/simfab"
)

func newWorld(t testing.TB, nodes, ranksPerNode int) (*cluster.World, *core.Runtime) {
	t.Helper()
	prov := simfab.New(nodes, fabric.DefaultCostModel())
	t.Cleanup(func() { prov.Close() })
	w := cluster.MustWorld(prov, cluster.Block(nodes, nodes*ranksPerNode))
	return w, core.NewRuntime(w)
}

func smallGenome() *Genome {
	return Generate(GenomeConfig{Length: 2000, ReadLen: 80, Coverage: 6, Seed: 3})
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenomeConfig{Length: 500, ReadLen: 50, Coverage: 4, Seed: 9})
	b := Generate(GenomeConfig{Length: 500, ReadLen: 50, Coverage: 4, Seed: 9})
	if !bytes.Equal(a.Reference, b.Reference) {
		t.Fatal("reference not deterministic")
	}
	if len(a.Reads) != len(b.Reads) {
		t.Fatal("read count differs")
	}
	for i := range a.Reads {
		if !bytes.Equal(a.Reads[i], b.Reads[i]) {
			t.Fatalf("read %d differs", i)
		}
	}
	c := Generate(GenomeConfig{Length: 500, ReadLen: 50, Coverage: 4, Seed: 10})
	if bytes.Equal(a.Reference, c.Reference) {
		t.Fatal("different seeds produced identical genomes")
	}
}

func TestGenerateErrorRate(t *testing.T) {
	clean := Generate(GenomeConfig{Length: 1000, ReadLen: 100, Coverage: 4, Seed: 1})
	noisy := Generate(GenomeConfig{Length: 1000, ReadLen: 100, Coverage: 4, Seed: 1, ErrorRate: 0.1})
	diff := 0
	for i := range clean.Reads {
		for j := range clean.Reads[i] {
			if clean.Reads[i][j] != noisy.Reads[i][j] {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("error rate produced no substitutions")
	}
}

func TestKmerCodeRoundTrip(t *testing.T) {
	seqs := []string{"ACGTACGTACGTACGTACGTA", "AAAAAAAAAAAAAAAAAAAAA", "TTTTTTTTTTTTTTTTTTTTT"}
	for _, s := range seqs {
		code, ok := KmerCode([]byte(s), K)
		if !ok {
			t.Fatalf("KmerCode(%s) failed", s)
		}
		if got := string(KmerDecode(code&(1<<(2*K)-1), K)); got != s {
			t.Fatalf("decode = %s, want %s", got, s)
		}
	}
	// Invalid base rejected.
	if _, ok := KmerCode([]byte("ACGTNACGTACGTACGTACGT"), K); ok {
		t.Fatal("N must be rejected")
	}
	// Too-short sequence rejected.
	if _, ok := KmerCode([]byte("ACGT"), K); ok {
		t.Fatal("short sequence must be rejected")
	}
	// Distinct sequences yield distinct codes.
	c1, _ := KmerCode([]byte("ACGTACGTACGTACGTACGTA"), K)
	c2, _ := KmerCode([]byte("ACGTACGTACGTACGTACGTC"), K)
	if c1 == c2 {
		t.Fatal("distinct kmers collided")
	}
}

func TestShiftKmer(t *testing.T) {
	code, _ := KmerCode([]byte("ACGTACGTACGTACGTACGTA"), K)
	shifted := shiftKmer(code, 1) // append C
	want, _ := KmerCode([]byte("CGTACGTACGTACGTACGTAC"), K)
	if shifted != want {
		t.Fatalf("shiftKmer = %#x, want %#x", shifted, want)
	}
}

func TestReadShardPartition(t *testing.T) {
	g := smallGenome()
	covered := 0
	prevHi := 0
	for r := 0; r < 7; r++ {
		lo, hi := g.ReadShard(r, 7)
		if lo != prevHi {
			t.Fatalf("shard %d starts at %d, want %d", r, lo, prevHi)
		}
		covered += hi - lo
		prevHi = hi
	}
	if covered != len(g.Reads) {
		t.Fatalf("shards cover %d of %d reads", covered, len(g.Reads))
	}
}

func TestCountKmersHCLMatchesLocalHistogram(t *testing.T) {
	g := smallGenome()
	w, rt := newWorld(t, 4, 2)
	res, err := CountKmersHCL(rt, w, g)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth computed locally.
	truth := make(map[uint64]uint32)
	total := 0
	g.ForEachKmer(K, 0, len(g.Reads), func(code uint64) {
		truth[code]++
		total++
	})
	if res.TotalKmers != total {
		t.Fatalf("TotalKmers = %d, want %d", res.TotalKmers, total)
	}
	if res.DistinctKmers != len(truth) {
		t.Fatalf("DistinctKmers = %d, want %d", res.DistinctKmers, len(truth))
	}
	if res.Makespan <= 0 {
		t.Fatal("makespan must be positive")
	}
}

func TestCountKmersBCLProcessesAll(t *testing.T) {
	g := smallGenome()
	w, _ := newWorld(t, 2, 2)
	res, err := CountKmersBCL(w, g)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	g.ForEachKmer(K, 0, len(g.Reads), func(uint64) { total++ })
	if res.TotalKmers != total {
		t.Fatalf("TotalKmers = %d, want %d", res.TotalKmers, total)
	}
}

func TestKmerCountingHCLBeatsBCL(t *testing.T) {
	g := smallGenome()
	wH, rtH := newWorld(t, 4, 2)
	hclRes, err := CountKmersHCL(rtH, wH, g)
	if err != nil {
		t.Fatal(err)
	}
	wB, _ := newWorld(t, 4, 2)
	bclRes, err := CountKmersBCL(wB, g)
	if err != nil {
		t.Fatal(err)
	}
	if hclRes.Makespan >= bclRes.Makespan {
		t.Fatalf("HCL (%v) should beat BCL (%v)", hclRes.Makespan, bclRes.Makespan)
	}
	t.Logf("kmer-count: HCL %v vs BCL %v (%.1fx)", hclRes.Makespan, bclRes.Makespan,
		float64(bclRes.Makespan)/float64(hclRes.Makespan))
}

func TestContigGenHCLAssembles(t *testing.T) {
	// A clean (error-free) genome with good coverage should assemble
	// into contigs whose total bases are in the rough vicinity of the
	// reference length.
	g := Generate(GenomeConfig{Length: 3000, ReadLen: 120, Coverage: 10, Seed: 5})
	w, rt := newWorld(t, 4, 2)
	res, err := ContigGenHCL(rt, w, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Contigs == 0 || res.ContigBases < K {
		t.Fatalf("no assembly: %+v", res)
	}
	if res.DistinctKmers == 0 {
		t.Fatal("graph is empty")
	}
	t.Logf("contigs=%d bases=%d distinct=%d", res.Contigs, res.ContigBases, res.DistinctKmers)
}

func TestContigGenBCLAssembles(t *testing.T) {
	g := Generate(GenomeConfig{Length: 3000, ReadLen: 120, Coverage: 10, Seed: 5})
	w, _ := newWorld(t, 2, 2)
	res, err := ContigGenBCL(w, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Contigs == 0 || res.ContigBases < K {
		t.Fatalf("no assembly: %+v", res)
	}
}

func TestContigGenHCLBeatsBCL(t *testing.T) {
	g := Generate(GenomeConfig{Length: 2000, ReadLen: 100, Coverage: 8, Seed: 13})
	wH, rtH := newWorld(t, 4, 2)
	hclRes, err := ContigGenHCL(rtH, wH, g)
	if err != nil {
		t.Fatal(err)
	}
	wB, _ := newWorld(t, 4, 2)
	bclRes, err := ContigGenBCL(wB, g)
	if err != nil {
		t.Fatal(err)
	}
	if hclRes.Makespan >= bclRes.Makespan {
		t.Fatalf("HCL (%v) should beat BCL (%v)", hclRes.Makespan, bclRes.Makespan)
	}
	t.Logf("contig-gen: HCL %v vs BCL %v (%.1fx)", hclRes.Makespan, bclRes.Makespan,
		float64(bclRes.Makespan)/float64(hclRes.Makespan))
}

func TestCountsFromReadsConsistentWithDistributedGraph(t *testing.T) {
	g := smallGenome()
	truth := CountsFromReads(g)
	w, rt := newWorld(t, 2, 1)
	m, err := core.NewUnorderedMap[uint64, Extension](rt, "check")
	if err != nil {
		t.Fatal(err)
	}
	m.SetMerge(func(old, in Extension) Extension {
		for i := range old.Next {
			old.Next[i] += in.Next[i]
		}
		return old
	})
	r := w.Rank(0)
	for i := range g.Reads {
		read := g.Reads[i]
		for j := 0; j+K < len(read); j++ {
			code, ok := KmerCode(read[j:j+K], K)
			if !ok {
				continue
			}
			b := baseIndex(read[j+K])
			if b < 0 {
				continue
			}
			var ext Extension
			ext.Next[b] = 1
			if _, err := m.Merge(r, code, ext); err != nil {
				t.Fatal(err)
			}
		}
	}
	for code, e := range truth {
		got, ok, err := m.Find(r, code)
		if err != nil || !ok {
			t.Fatalf("missing graph node %#x: %v", code, err)
		}
		if got.Next != e.Next {
			t.Fatalf("node %#x: %v vs %v", code, got.Next, e.Next)
		}
	}
}
