// Package meraculous reproduces the two Meraculous genome-assembly
// kernels of the paper's Figures 7b and 7c: k-mer counting (a distributed
// histogram over an unordered map) and contig generation (a de Bruijn
// graph traversal whose node set lives in an unordered map). The paper's
// input is real sequencing data; this package substitutes a seeded
// synthetic genome plus a read simulator with configurable coverage and
// error rate, which exercises the hashmap identically (see DESIGN.md).
package meraculous

import "math/rand"

// Bases in encoding order.
const bases = "ACGT"

// Genome is a synthetic reference sequence plus sampled reads.
type Genome struct {
	// Reference is the underlying sequence.
	Reference []byte
	// Reads are the sampled (possibly erroneous) fragments.
	Reads [][]byte
}

// GenomeConfig parameterizes the simulator.
type GenomeConfig struct {
	// Length of the reference sequence (default 10_000).
	Length int
	// ReadLen is the fragment length (default 100).
	ReadLen int
	// Coverage is the average sampling depth (default 8).
	Coverage int
	// ErrorRate is the per-base substitution probability (default 0).
	ErrorRate float64
	// Seed makes the genome reproducible.
	Seed int64
}

func (c *GenomeConfig) fill() {
	if c.Length <= 0 {
		c.Length = 10_000
	}
	if c.ReadLen <= 0 {
		c.ReadLen = 100
	}
	if c.ReadLen > c.Length {
		c.ReadLen = c.Length
	}
	if c.Coverage <= 0 {
		c.Coverage = 8
	}
}

// Generate builds a reference and samples reads from it.
func Generate(cfg GenomeConfig) *Genome {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed*31337 + 17))
	ref := make([]byte, cfg.Length)
	for i := range ref {
		ref[i] = bases[rng.Intn(4)]
	}
	nReads := cfg.Length * cfg.Coverage / cfg.ReadLen
	if nReads < 1 {
		nReads = 1
	}
	reads := make([][]byte, nReads)
	for i := range reads {
		start := rng.Intn(cfg.Length - cfg.ReadLen + 1)
		read := make([]byte, cfg.ReadLen)
		copy(read, ref[start:start+cfg.ReadLen])
		if cfg.ErrorRate > 0 {
			for j := range read {
				if rng.Float64() < cfg.ErrorRate {
					read[j] = bases[rng.Intn(4)]
				}
			}
		}
		reads[i] = read
	}
	return &Genome{Reference: ref, Reads: reads}
}

// KmerCode packs a k-mer (k <= 31) into a uint64, 2 bits per base. A
// leading sentinel 1-bit distinguishes lengths (so "A" and "AA" differ).
func KmerCode(seq []byte, k int) (uint64, bool) {
	if k > 31 || len(seq) < k {
		return 0, false
	}
	code := uint64(1)
	for i := 0; i < k; i++ {
		var b uint64
		switch seq[i] {
		case 'A':
			b = 0
		case 'C':
			b = 1
		case 'G':
			b = 2
		case 'T':
			b = 3
		default:
			return 0, false
		}
		code = code<<2 | b
	}
	return code, true
}

// KmerDecode unpacks a k-mer code produced by KmerCode.
func KmerDecode(code uint64, k int) []byte {
	seq := make([]byte, k)
	for i := k - 1; i >= 0; i-- {
		seq[i] = bases[code&3]
		code >>= 2
	}
	return seq
}

// ForEachKmer invokes fn for every k-mer of every read in [lo, hi).
func (g *Genome) ForEachKmer(k, lo, hi int, fn func(code uint64)) {
	if hi > len(g.Reads) {
		hi = len(g.Reads)
	}
	for i := lo; i < hi; i++ {
		read := g.Reads[i]
		for j := 0; j+k <= len(read); j++ {
			if code, ok := KmerCode(read[j:j+k], k); ok {
				fn(code)
			}
		}
	}
}

// ReadShard splits the read set evenly across ranks.
func (g *Genome) ReadShard(rank, ranks int) (lo, hi int) {
	n := len(g.Reads)
	lo = rank * n / ranks
	hi = (rank + 1) * n / ranks
	return lo, hi
}
