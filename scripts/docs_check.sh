#!/bin/sh
# docs_check.sh — the docs lint behind `make docs-check` and CI's
# docs-check step. Stdlib shell + grep/sed only, no dependencies.
#
# Two checks:
#   1. every relative markdown link [..](path) in *.md and docs/*.md
#      must point at a file that exists (anchors and URLs are skipped);
#   2. every metric series the docs name with the repo's prefixes
#      (hcl_*, fabric_*, ror_*) must be declared in
#      internal/metrics/metrics.go — docs cannot drift from the
#      instrumentation they describe.
set -u
cd "$(dirname "$0")/.."

fail=0

# --- 1. relative links resolve -----------------------------------------
for f in *.md docs/*.md; do
    [ -f "$f" ] || continue
    dir=$(dirname "$f")
    # Strip fenced code blocks and inline code (generic Go calls like
    # m[k](r, ...) would read as links), then pull every [text](target).
    links=$(sed '/^[[:space:]]*```/,/^[[:space:]]*```/d' "$f" \
        | sed 's/`[^`]*`//g' \
        | grep -o '\[[^]]*\]([^)]*)' | sed 's/^.*](//; s/)$//')
    for link in $links; do
        case "$link" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        target=${link%%#*}
        [ -n "$target" ] || continue
        if [ ! -e "$dir/$target" ]; then
            echo "docs-check: $f: broken link -> $link"
            fail=1
        fi
    done
done

# --- 2. metric names exist ---------------------------------------------
metrics_src=internal/metrics/metrics.go
for f in *.md docs/*.md; do
    [ -f "$f" ] || continue
    names=$(grep -o '\(hcl\|fabric\|ror\)_[a-z_]*' "$f" | sort -u)
    for name in $names; do
        # Skip non-series identifiers that share the prefixes.
        case "$name" in
            ror_|hcl_|fabric_) continue ;;
        esac
        if ! grep -q "\"$name\"" "$metrics_src"; then
            echo "docs-check: $f: metric '$name' not declared in $metrics_src"
            fail=1
        fi
    done
done

if [ "$fail" -eq 0 ]; then
    echo "docs-check: all markdown links resolve and all metric names exist"
fi
exit $fail
