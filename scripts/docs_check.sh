#!/bin/sh
# docs_check.sh — the docs lint behind `make docs-check` and CI's
# docs-check step. Stdlib shell + grep/sed only, no dependencies.
#
# Three checks:
#   1. every relative markdown link [..](path) in *.md and docs/*.md
#      must point at a file that exists (anchors and URLs are skipped);
#   2. every metric series the docs name with the repo's prefixes
#      (hcl_*, fabric_*, ror_*) must be declared in
#      internal/metrics/metrics.go — docs cannot drift from the
#      instrumentation they describe;
#   3. every `make <target>` the docs show as code must exist in the
#      Makefile — a renamed target must not leave docs pointing at a
#      command that no longer runs.
set -u
cd "$(dirname "$0")/.."

fail=0

# --- 1. relative links resolve -----------------------------------------
for f in *.md docs/*.md; do
    [ -f "$f" ] || continue
    dir=$(dirname "$f")
    # Strip fenced code blocks and inline code (generic Go calls like
    # m[k](r, ...) would read as links), then pull every [text](target).
    links=$(sed '/^[[:space:]]*```/,/^[[:space:]]*```/d' "$f" \
        | sed 's/`[^`]*`//g' \
        | grep -o '\[[^]]*\]([^)]*)' | sed 's/^.*](//; s/)$//')
    for link in $links; do
        case "$link" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        target=${link%%#*}
        [ -n "$target" ] || continue
        if [ ! -e "$dir/$target" ]; then
            echo "docs-check: $f: broken link -> $link"
            fail=1
        fi
    done
done

# --- 2. metric names exist ---------------------------------------------
metrics_src=internal/metrics/metrics.go
for f in *.md docs/*.md; do
    [ -f "$f" ] || continue
    names=$(grep -o '\(hcl\|fabric\|ror\)_[a-z_]*' "$f" | sort -u)
    for name in $names; do
        # Skip non-series identifiers that share the prefixes.
        case "$name" in
            ror_|hcl_|fabric_) continue ;;
        esac
        if ! grep -q "\"$name\"" "$metrics_src"; then
            echo "docs-check: $f: metric '$name' not declared in $metrics_src"
            fail=1
        fi
    done
done

# --- 3. make targets referenced in docs exist --------------------------
# Only commands rendered as code count: `make x` in inline backticks or
# inside a fenced block. Prose ("make sure the...") never matches, and
# SNIPPETS.md / PAPERS.md are skipped — they quote other repositories'
# build instructions, not this Makefile.
for f in *.md docs/*.md; do
    [ -f "$f" ] || continue
    case "$f" in SNIPPETS.md|PAPERS.md) continue ;;
    esac
    code=$(sed -n '/^[[:space:]]*```/,/^[[:space:]]*```/p' "$f"
        grep -o '`[^`]*`' "$f")
    targets=$(printf '%s\n' "$code" \
        | grep -o 'make [a-z][a-z0-9-]*' | sed 's/^make //' | sort -u)
    for t in $targets; do
        if ! grep -q "^$t:" Makefile; then
            echo "docs-check: $f: make target '$t' missing from Makefile"
            fail=1
        fi
    done
done

if [ "$fail" -eq 0 ]; then
    echo "docs-check: links resolve, metric names and make targets exist"
fi
exit $fail
